package benchmarks

import (
	"math"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
)

// Additional algorithm families: oracle-style circuits from the textbook
// algorithm zoo. All are Clifford(+T)-representable except WState.

// BernsteinVazirani builds the BV circuit recovering a secret n-bit string:
// H layer, phase oracle (CX fan-in to the target), H layer.
func BernsteinVazirani(n int, secret int64) *circuit.Circuit {
	c := circuit.New(n + 1)
	t := n
	c.Append(gate.NewX(t), gate.NewH(t))
	for q := 0; q < n; q++ {
		c.Append(gate.NewH(q))
	}
	for q := 0; q < n; q++ {
		if secret&(1<<uint(q)) != 0 {
			c.Append(gate.NewCX(q, t))
		}
	}
	for q := 0; q < n; q++ {
		c.Append(gate.NewH(q))
	}
	return c
}

// DeutschJozsa builds the DJ circuit with a balanced oracle defined by a
// mask: f(x) = parity(x & mask).
func DeutschJozsa(n int, mask int64) *circuit.Circuit {
	c := circuit.New(n + 1)
	t := n
	c.Append(gate.NewX(t), gate.NewH(t))
	for q := 0; q < n; q++ {
		c.Append(gate.NewH(q))
	}
	for q := 0; q < n; q++ {
		if mask&(1<<uint(q)) != 0 {
			c.Append(gate.NewCX(q, t))
		}
	}
	for q := 0; q < n; q++ {
		c.Append(gate.NewH(q))
	}
	return c
}

// HiddenShift builds the Rötteler hidden-shift circuit for the self-dual
// bent function f(x) = Σ x_{2i}·x_{2i+1} (Maiorana–McFarland with identity
// permutation): H layer, shifted oracle O_g = X(s)·O_f·X(s), H layer, dual
// oracle O_f, H layer. On |0…0⟩ the output is exactly |s⟩. Clifford-only;
// n must be even for f to be bent.
func HiddenShift(n int, shift int64, _ int64) *circuit.Circuit {
	if n%2 != 0 {
		n++
	}
	c := circuit.New(n)
	hLayer := func() {
		for q := 0; q < n; q++ {
			c.Append(gate.NewH(q))
		}
	}
	oracleF := func() {
		for q := 0; q+1 < n; q += 2 {
			c.Append(gate.NewCZ(q, q+1))
		}
	}
	xShift := func() {
		for q := 0; q < n; q++ {
			if shift&(1<<uint(q)) != 0 {
				c.Append(gate.NewX(q))
			}
		}
	}
	hLayer()
	xShift()
	oracleF()
	xShift()
	hLayer()
	oracleF()
	hLayer()
	return c
}

// WState prepares the n-qubit W state with the cascade of controlled
// Ry rotations followed by a CX chain.
func WState(n int) *circuit.Circuit {
	c := circuit.New(n)
	// |W_n> via F-gates: ry rotations with angles θ_k = arccos(1/√(n−k)).
	c.Append(gate.NewX(0))
	for k := 0; k < n-1; k++ {
		theta := 2 * math.Acos(math.Sqrt(1.0/float64(n-k)))
		// Controlled-Ry(θ) on (k → k+1) decomposed into ry halves and cx.
		c.Append(gate.NewRy(theta/2, k+1))
		c.Append(gate.NewCX(k, k+1))
		c.Append(gate.NewRy(-theta/2, k+1))
		c.Append(gate.NewCX(k, k+1))
		// Swap the excitation along: cx back.
		c.Append(gate.NewCX(k+1, k))
	}
	return c
}
