// Package benchmarks generates the 247-circuit evaluation suite: the
// quantum algorithms named in §6 (QAOA, VQE, QPE, QFT, Grover, adders and
// Toffoli networks at the heart of Shor's algorithm) plus Hamiltonian
// simulation and random circuits, spanning 4–36 qubits, each translated
// into the evaluation gate sets. All generators are deterministic.
package benchmarks

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
)

// QFT builds the quantum Fourier transform on n qubits (controlled-phase
// ladder plus the final qubit reversal swaps).
func QFT(n int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < n; i++ {
		c.Append(gate.NewH(i))
		for j := i + 1; j < n; j++ {
			c.Append(gate.NewCP(math.Pi/math.Pow(2, float64(j-i)), j, i))
		}
	}
	for i := 0; i < n/2; i++ {
		c.Append(gate.NewSwap(i, n-1-i))
	}
	return c
}

// GHZ prepares the n-qubit GHZ state.
func GHZ(n int) *circuit.Circuit {
	c := circuit.New(n)
	c.Append(gate.NewH(0))
	for i := 0; i < n-1; i++ {
		c.Append(gate.NewCX(i, i+1))
	}
	return c
}

// BarencoTof is the Barenco et al. decomposition of an n-control Toffoli
// using a V-chain of ordinary Toffolis over n−2 ancillas — the
// barenco_tof_n benchmark family of §2.3.
func BarencoTof(n int) *circuit.Circuit {
	if n < 3 {
		n = 3
	}
	// Qubits: n controls, 1 target, n-2 ancillas.
	controls := make([]int, n)
	for i := range controls {
		controls[i] = i
	}
	target := n
	anc := make([]int, n-2)
	for i := range anc {
		anc[i] = n + 1 + i
	}
	c := circuit.New(n + 1 + len(anc))
	up := func() {
		c.Append(gate.NewCCX(controls[0], controls[1], anc[0]))
		for i := 2; i < n-1; i++ {
			c.Append(gate.NewCCX(controls[i], anc[i-2], anc[i-1]))
		}
	}
	down := func() {
		for i := n - 2; i >= 2; i-- {
			c.Append(gate.NewCCX(controls[i], anc[i-2], anc[i-1]))
		}
		c.Append(gate.NewCCX(controls[0], controls[1], anc[0]))
	}
	up()
	c.Append(gate.NewCCX(controls[n-1], anc[n-3], target))
	down()
	return c
}

// Tof is a cascade of n plain Toffolis (the tof_n family).
func Tof(n int) *circuit.Circuit {
	if n < 3 {
		n = 3
	}
	c := circuit.New(n)
	for i := 0; i+2 < n; i++ {
		c.Append(gate.NewCCX(i, i+1, i+2))
	}
	for i := n - 3; i >= 0; i-- {
		c.Append(gate.NewCCX(i, i+1, i+2))
	}
	return c
}

// Adder is the CDKM (Cuccaro) ripple-carry adder on two n-bit registers
// with one carry ancilla: MAJ / UMA ladders of cx + ccx.
func Adder(n int) *circuit.Circuit {
	// Layout: carry = 0, a_i = 1+i, b_i = 1+n+i.
	c := circuit.New(2*n + 1)
	a := func(i int) int { return 1 + i }
	b := func(i int) int { return 1 + n + i }
	maj := func(x, y, z int) {
		c.Append(gate.NewCX(z, y), gate.NewCX(z, x), gate.NewCCX(x, y, z))
	}
	uma := func(x, y, z int) {
		c.Append(gate.NewCCX(x, y, z), gate.NewCX(z, x), gate.NewCX(x, y))
	}
	maj(0, b(0), a(0))
	for i := 1; i < n; i++ {
		maj(a(i-1), b(i), a(i))
	}
	for i := n - 1; i >= 1; i-- {
		uma(a(i-1), b(i), a(i))
	}
	uma(0, b(0), a(0))
	return c
}

// VBEAdder is the classic Vedral–Barenco–Ekert adder (carry/sum blocks),
// heavier in Toffolis than CDKM.
func VBEAdder(n int) *circuit.Circuit {
	// Layout: a_i = i, b_i = n+i, carry c_i = 2n+i (n+1 carries).
	c := circuit.New(3*n + 1)
	a := func(i int) int { return i }
	b := func(i int) int { return n + i }
	cr := func(i int) int { return 2*n + i }
	carry := func(ci, ai, bi, cj int) {
		c.Append(gate.NewCCX(ai, bi, cj), gate.NewCX(ai, bi), gate.NewCCX(ci, bi, cj))
	}
	carryInv := func(ci, ai, bi, cj int) {
		c.Append(gate.NewCCX(ci, bi, cj), gate.NewCX(ai, bi), gate.NewCCX(ai, bi, cj))
	}
	sum := func(ci, ai, bi int) {
		c.Append(gate.NewCX(ai, bi), gate.NewCX(ci, bi))
	}
	for i := 0; i < n; i++ {
		carry(cr(i), a(i), b(i), cr(i+1))
	}
	c.Append(gate.NewCX(a(n-1), b(n-1)))
	sum(cr(n-1), a(n-1), b(n-1))
	for i := n - 2; i >= 0; i-- {
		carryInv(cr(i), a(i), b(i), cr(i+1))
		sum(cr(i), a(i), b(i))
	}
	return c
}

// GF2Mult is the GF(2^n) multiplier: an AND (Toffoli) for every coefficient
// product, reduced modulo a fixed primitive polynomial (x^n + x + 1).
func GF2Mult(n int) *circuit.Circuit {
	// Layout: a_i = i, b_j = n+j, result_k = 2n+k.
	c := circuit.New(3 * n)
	res := func(k int) int { return 2*n + k }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			k := i + j
			if k < n {
				c.Append(gate.NewCCX(i, n+j, res(k)))
			} else {
				// x^k ≡ x^(k−n+1) + x^(k−n)  (mod x^n + x + 1)
				c.Append(gate.NewCCX(i, n+j, res(k-n+1)))
				c.Append(gate.NewCCX(i, n+j, res(k-n)))
			}
		}
	}
	return c
}

// Multiplier is a shift-and-add n-bit multiplier built from controlled
// ripple additions (a compact stand-in for the mult_n family).
func Multiplier(n int) *circuit.Circuit {
	// Layout: a = [0,n), b = [n,2n), partial accumulator = [2n,3n).
	c := circuit.New(3 * n)
	for i := 0; i < n; i++ {
		// Add a (controlled on b_i) into the accumulator, shifted by i:
		// simplified controlled-add via Toffolis and CX carries.
		for j := 0; j+i < n; j++ {
			c.Append(gate.NewCCX(j, n+i, 2*n+i+j))
		}
		for j := 0; j+i+1 < n; j++ {
			c.Append(gate.NewCX(2*n+i+j, 2*n+i+j+1))
		}
	}
	return c
}

// QAOA builds a p-round MaxCut QAOA circuit on a random 3-regular graph.
func QAOA(n, p int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	edges := randomRegularEdges(n, 3, rng)
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.Append(gate.NewH(q))
	}
	for round := 0; round < p; round++ {
		gamma := rng.Float64() * math.Pi
		beta := rng.Float64() * math.Pi
		for _, e := range edges {
			c.Append(gate.NewRzz(gamma, e[0], e[1]))
		}
		for q := 0; q < n; q++ {
			c.Append(gate.NewRx(2*beta, q))
		}
	}
	return c
}

// VQE builds a hardware-efficient VQE ansatz: layers of ry·rz rotations and
// a CX entangling chain.
func VQE(n, layers int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			c.Append(gate.NewRy(rng.Float64()*2*math.Pi-math.Pi, q))
			c.Append(gate.NewRz(rng.Float64()*2*math.Pi-math.Pi, q))
		}
		for q := 0; q+1 < n; q++ {
			c.Append(gate.NewCX(q, q+1))
		}
	}
	for q := 0; q < n; q++ {
		c.Append(gate.NewRy(rng.Float64()*2*math.Pi-math.Pi, q))
	}
	return c
}

// QPE is quantum phase estimation with n counting qubits over a one-qubit
// phase unitary: controlled-phase powers followed by the inverse QFT.
func QPE(n int) *circuit.Circuit {
	c := circuit.New(n + 1)
	target := n
	c.Append(gate.NewX(target))
	theta := 2 * math.Pi * 0.3125 // the eigenphase being estimated
	for i := 0; i < n; i++ {
		c.Append(gate.NewH(i))
		c.Append(gate.NewCP(theta*math.Pow(2, float64(n-1-i)), i, target))
	}
	// Inverse QFT on the counting register.
	for i := n - 1; i >= 0; i-- {
		for j := n - 1; j > i; j-- {
			c.Append(gate.NewCP(-math.Pi/math.Pow(2, float64(j-i)), j, i))
		}
		c.Append(gate.NewH(i))
	}
	return c
}

// Grover builds iters rounds of Grover search on n qubits with a
// Toffoli-chain oracle marking the all-ones state.
func Grover(n, iters int) *circuit.Circuit {
	anc := n - 2 // ancillas for the multi-controlled Z chains
	if anc < 0 {
		anc = 0
	}
	c := circuit.New(n + anc)
	mcz := func() {
		if n == 2 {
			c.Append(gate.NewCZ(0, 1))
			return
		}
		// Compute the AND chain into ancillas, phase, uncompute.
		c.Append(gate.NewCCX(0, 1, n))
		for i := 2; i < n-1; i++ {
			c.Append(gate.NewCCX(i, n+i-2, n+i-1))
		}
		c.Append(gate.NewCZ(n-1, n+anc-1))
		for i := n - 2; i >= 2; i-- {
			c.Append(gate.NewCCX(i, n+i-2, n+i-1))
		}
		c.Append(gate.NewCCX(0, 1, n))
	}
	for q := 0; q < n; q++ {
		c.Append(gate.NewH(q))
	}
	for it := 0; it < iters; it++ {
		mcz() // oracle: phase flip on |1...1>
		for q := 0; q < n; q++ {
			c.Append(gate.NewH(q), gate.NewX(q))
		}
		mcz() // diffusion kernel
		for q := 0; q < n; q++ {
			c.Append(gate.NewX(q), gate.NewH(q))
		}
	}
	return c
}

// Ising is a first-order Trotterization of the transverse-field Ising model
// on a chain: rzz couplings and rx fields.
func Ising(n, steps int) *circuit.Circuit {
	c := circuit.New(n)
	dt := 0.1
	for s := 0; s < steps; s++ {
		for q := 0; q+1 < n; q++ {
			c.Append(gate.NewRzz(2*dt, q, q+1))
		}
		for q := 0; q < n; q++ {
			c.Append(gate.NewRx(dt, q))
		}
	}
	return c
}

// Heisenberg is a Trotterized Heisenberg-XYZ chain: rxx + ryy + rzz per
// bond, with ryy realized by basis change around rzz.
func Heisenberg(n, steps int) *circuit.Circuit {
	c := circuit.New(n)
	dt := 0.1
	for s := 0; s < steps; s++ {
		for q := 0; q+1 < n; q++ {
			c.Append(gate.NewRxx(2*dt, q, q+1))
			// ryy via rx(π/2) conjugation of rzz.
			c.Append(gate.NewRx(math.Pi/2, q), gate.NewRx(math.Pi/2, q+1))
			c.Append(gate.NewRzz(2*dt, q, q+1))
			c.Append(gate.NewRx(-math.Pi/2, q), gate.NewRx(-math.Pi/2, q+1))
			c.Append(gate.NewRzz(2*dt, q, q+1))
		}
	}
	return c
}

// RandomCliffordT generates a random Clifford+T circuit (exactly
// representable in every evaluation gate set).
func RandomCliffordT(n, gates int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	vocab := []gate.Name{gate.H, gate.X, gate.S, gate.Sdg, gate.T, gate.Tdg, gate.CX, gate.CZ, gate.CCX}
	return circuit.Random(n, gates, vocab, rng)
}

// randomRegularEdges samples a d-regular-ish graph via the stub-matching
// heuristic, deterministically.
func randomRegularEdges(n, d int, rng *rand.Rand) [][2]int {
	var edges [][2]int
	seen := map[[2]int]bool{}
	deg := make([]int, n)
	attempts := 0
	for attempts < 50*n {
		attempts++
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b || deg[a] >= d || deg[b] >= d {
			continue
		}
		key := [2]int{min(a, b), max(a, b)}
		if seen[key] {
			continue
		}
		seen[key] = true
		deg[a]++
		deg[b]++
		edges = append(edges, key)
	}
	// Ensure connectivity of degree-0 stragglers.
	for q := 0; q < n; q++ {
		if deg[q] == 0 {
			other := (q + 1) % n
			edges = append(edges, [2]int{min(q, other), max(q, other)})
		}
	}
	return edges
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// fmtName builds canonical benchmark names like "qft_20".
func fmtName(family string, params ...int) string {
	name := family
	for _, p := range params {
		name += fmt.Sprintf("_%d", p)
	}
	return name
}
