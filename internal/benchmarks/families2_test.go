package benchmarks

import (
	"math"
	"math/cmplx"
	"testing"

	"github.com/guoq-dev/guoq/internal/gateset"
)

func TestBernsteinVaziraniRecoversSecret(t *testing.T) {
	n := 5
	secret := int64(0b10110)
	c := BernsteinVazirani(n, secret)
	dim := 1 << c.NumQubits
	st := make([]complex128, dim)
	st[0] = 1
	c.Apply(st)
	// After the algorithm the counting register holds |secret> exactly;
	// the ancilla stays in |−>, so marginalize over it.
	probOf := func(counting int64) float64 {
		var p float64
		for anc := 0; anc < 2; anc++ {
			idx := anc
			for q := 0; q < n; q++ {
				if counting&(1<<uint(q)) != 0 {
					idx |= 1 << uint(c.NumQubits-1-q)
				}
			}
			p += real(st[idx])*real(st[idx]) + imag(st[idx])*imag(st[idx])
		}
		return p
	}
	if p := probOf(secret); p < 0.99 {
		t.Fatalf("BV success probability %g", p)
	}
}

func TestDeutschJozsaBalancedOracle(t *testing.T) {
	// For a balanced oracle the all-zeros outcome on the counting register
	// has zero amplitude.
	n := 4
	c := DeutschJozsa(n, 0b1010)
	dim := 1 << c.NumQubits
	st := make([]complex128, dim)
	st[0] = 1
	c.Apply(st)
	// Sum probability over counting register = 0...0 (both ancilla values).
	var p float64
	for anc := 0; anc < 2; anc++ {
		idx := anc // counting bits all zero; ancilla is the LSB
		p += real(st[idx])*real(st[idx]) + imag(st[idx])*imag(st[idx])
	}
	if p > 1e-9 {
		t.Fatalf("balanced DJ gave zero-state probability %g", p)
	}
}

func TestWStateAmplitudes(t *testing.T) {
	n := 4
	c := WState(n)
	dim := 1 << n
	st := make([]complex128, dim)
	st[0] = 1
	c.Apply(st)
	// Exactly the n single-excitation basis states carry weight 1/n each.
	want := 1.0 / float64(n)
	var total float64
	for i, v := range st {
		p := real(v)*real(v) + imag(v)*imag(v)
		ones := 0
		for b := 0; b < n; b++ {
			if i&(1<<uint(b)) != 0 {
				ones++
			}
		}
		if ones == 1 {
			if math.Abs(p-want) > 1e-9 {
				t.Fatalf("W amplitude at %b: %g, want %g", i, p, want)
			}
			total += p
		} else if p > 1e-9 {
			t.Fatalf("W state has weight %g outside the single-excitation manifold (state %b)", p, i)
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("W state total = %g", total)
	}
}

func TestHiddenShiftCliffordOnly(t *testing.T) {
	c := HiddenShift(8, 0x2d, 1)
	if _, err := gateset.Translate(c, gateset.CliffordT); err != nil {
		t.Fatalf("hidden shift must be Clifford+T exact: %v", err)
	}
	// Output on |0...0> must be a single basis state (bent-function duality
	// maps the shift to a measurement outcome deterministically).
	dim := 1 << c.NumQubits
	st := make([]complex128, dim)
	st[0] = 1
	c.Apply(st)
	var nonzero int
	for _, v := range st {
		if cmplx.Abs(v) > 1e-9 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Fatalf("hidden shift output spread over %d basis states, want 1", nonzero)
	}
}
