package benchmarks

import (
	"testing"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/linalg"
)

func TestSuiteSizeAndShape(t *testing.T) {
	s := Suite()
	if len(s) != SuiteSize {
		t.Fatalf("suite has %d circuits, want %d", len(s), SuiteSize)
	}
	names := map[string]bool{}
	for _, b := range s {
		if names[b.Name] {
			t.Errorf("duplicate benchmark name %s", b.Name)
		}
		names[b.Name] = true
		if b.Circuit.Len() == 0 {
			t.Errorf("%s is empty", b.Name)
		}
		if b.Circuit.NumQubits < 3 || b.Circuit.NumQubits > 40 {
			t.Errorf("%s has %d qubits", b.Name, b.Circuit.NumQubits)
		}
	}
}

func TestSuiteDeterministic(t *testing.T) {
	a, b := Suite(), Suite()
	for i := range a {
		if a[i].Name != b[i].Name || !circuit.Equal(a[i].Circuit, b[i].Circuit) {
			t.Fatalf("suite not deterministic at %d (%s)", i, a[i].Name)
		}
	}
}

func TestCliffordTSuiteTranslates(t *testing.T) {
	s := CliffordTSuite()
	if len(s) != SuiteSize {
		t.Fatalf("cliffordt suite has %d circuits", len(s))
	}
	if _, err := ForGateSet(s[:30], gateset.CliffordT); err != nil {
		t.Fatalf("cliffordt suite must translate exactly: %v", err)
	}
}

func TestSuiteForEveryGateSet(t *testing.T) {
	for _, gs := range gateset.All() {
		suite, err := SuiteFor(gs)
		if err != nil {
			t.Fatalf("%s: %v", gs.Name, err)
		}
		if len(suite) != SuiteSize {
			t.Fatalf("%s: %d circuits", gs.Name, len(suite))
		}
		for _, b := range suite[:20] {
			if !gs.IsNative(b.Circuit) {
				t.Fatalf("%s: %s not native", gs.Name, b.Name)
			}
		}
	}
}

// TestFamilySemantics checks the structural generators against their
// expected behaviour on small instances via state evolution.
func TestFamilySemantics(t *testing.T) {
	// GHZ: |0..0> -> (|0..0> + |1..1>)/√2.
	g := GHZ(3)
	state := make([]complex128, 8)
	state[0] = 1
	g.Apply(state)
	if real(state[0]) < 0.7 || real(state[7]) < 0.7 {
		t.Fatalf("GHZ state wrong: %v", state)
	}

	// Adder: 2 + 3 = 5 for n=3 (a=2, b=3 -> b=5).
	n := 3
	add := Adder(n)
	dim := 1 << add.NumQubits
	st := make([]complex128, dim)
	// Layout: carry=0, a_i=1+i (LSB first), b_i=1+n+i.
	aVal, bVal := 2, 3
	idx := 0
	for i := 0; i < n; i++ {
		if aVal&(1<<i) != 0 {
			idx |= 1 << uint(add.NumQubits-1-(1+i))
		}
		if bVal&(1<<i) != 0 {
			idx |= 1 << uint(add.NumQubits-1-(1+n+i))
		}
	}
	st[idx] = 1
	add.Apply(st)
	// Find the output basis state and decode b.
	var outIdx int
	found := false
	for i, v := range st {
		if real(v)*real(v)+imag(v)*imag(v) > 0.5 {
			outIdx = i
			found = true
		}
	}
	if !found {
		t.Fatal("adder output is not a basis state")
	}
	got := 0
	for i := 0; i < n; i++ {
		if outIdx&(1<<uint(add.NumQubits-1-(1+n+i))) != 0 {
			got |= 1 << i
		}
	}
	if got != aVal+bVal {
		t.Fatalf("adder: %d + %d = %d, got %d", aVal, bVal, aVal+bVal, got)
	}
}

func TestBarencoTofIsMultiControlToffoli(t *testing.T) {
	// For n=3 controls: flips the target iff all controls are 1, and
	// restores the ancillas.
	c := BarencoTof(3)
	nq := c.NumQubits
	dim := 1 << nq
	u := c.Unitary()
	for in := 0; in < dim; in++ {
		// Only consider ancillas = 0 inputs.
		anc := in & 1 // ancilla is the last qubit (LSB)
		if anc != 0 {
			continue
		}
		ctrlMask := 0
		for q := 0; q < 3; q++ {
			if in&(1<<uint(nq-1-q)) != 0 {
				ctrlMask++
			}
		}
		want := in
		if ctrlMask == 3 {
			want = in ^ (1 << uint(nq-1-3)) // flip target qubit 3
		}
		if v := u.At(want, in); real(v) < 0.99 {
			t.Fatalf("barenco_tof(3): input %b -> expected %b, amplitude %v", in, want, v)
		}
	}
}

func TestQFTSmallMatchesDFT(t *testing.T) {
	// The 2-qubit QFT matrix is the 4-point DFT (with bit reversal handled
	// by the final swap).
	u := QFT(2).Unitary()
	w := complex(0, 1) // e^{2πi/4}
	want := linalg.New(4)
	for r := 0; r < 4; r++ {
		for cc := 0; cc < 4; cc++ {
			pow := (r * cc) % 4
			v := complex(0.5, 0)
			for k := 0; k < pow; k++ {
				v *= w
			}
			want.Set(r, cc, v)
		}
	}
	if !linalg.EqualUpToPhase(u, want, 1e-9) {
		t.Fatalf("QFT(2) != DFT4:\n%v\nvs\n%v", u, want)
	}
}

func TestGroverAmplifiesMarkedState(t *testing.T) {
	// Grover(3,1) should boost the |111> amplitude well above uniform.
	g := Grover(3, 1)
	dim := 1 << g.NumQubits
	st := make([]complex128, dim)
	st[0] = 1
	g.Apply(st)
	// Marked state: first 3 qubits = 111, ancilla restored to 0.
	idx := 0
	for q := 0; q < 3; q++ {
		idx |= 1 << uint(g.NumQubits-1-q)
	}
	p := real(st[idx])*real(st[idx]) + imag(st[idx])*imag(st[idx])
	if p < 0.5 {
		t.Fatalf("Grover amplitude for |111> = %g, want > 0.5", p)
	}
}

func TestQAOAUsesGraphStructure(t *testing.T) {
	c := QAOA(8, 2, 1)
	if c.CountOf(gate.Rzz) == 0 || c.CountOf(gate.Rx) == 0 {
		t.Fatal("QAOA missing cost or mixer layers")
	}
	if c.NumQubits != 8 {
		t.Fatal("QAOA qubit count wrong")
	}
}

func TestByName(t *testing.T) {
	s := Suite()
	b, ok := ByName(s, "qft_8")
	if !ok || b.Circuit.NumQubits != 8 {
		t.Fatal("ByName(qft_8) failed")
	}
	if _, ok := ByName(s, "nonexistent"); ok {
		t.Fatal("ByName should fail for unknown names")
	}
}
