package benchmarks

import (
	"fmt"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gateset"
)

// Named is a benchmark circuit in its source (universal) vocabulary.
type Named struct {
	Name    string
	Family  string
	Circuit *circuit.Circuit
}

// SuiteSize is the benchmark count of the paper's evaluation (§6).
const SuiteSize = 247

// Suite returns the 247-circuit NISQ benchmark suite in the universal
// vocabulary (callers translate into a gate set with ForGateSet). Circuits
// act on 4–36 qubits, mixing the near- and long-term algorithm families of
// §6; deterministic across calls.
func Suite() []Named {
	var out []Named
	add := func(family string, c *circuit.Circuit, params ...int) {
		out = append(out, Named{Name: fmtName(family, params...), Family: family, Circuit: c})
	}

	for n := 4; n <= 20; n++ { // 17
		add("qft", QFT(n), n)
	}
	for n := 4; n <= 36; n += 2 { // 17
		add("ghz", GHZ(n), n)
	}
	for n := 8; n <= 26; n += 2 { // 20
		add("qaoa", QAOA(n, 1, int64(n)), n, 1)
		add("qaoa", QAOA(n, 2, int64(n)+100), n, 2)
	}
	for n := 4; n <= 22; n += 2 { // 20
		add("vqe", VQE(n, 2, int64(n)), n, 2)
		add("vqe", VQE(n, 4, int64(n)+200), n, 4)
	}
	for n := 6; n <= 24; n += 2 { // 20
		add("ising", Ising(n, 5), n, 5)
		add("ising", Ising(n, 20), n, 20)
	}
	for n := 6; n <= 20; n += 2 { // 16
		add("heisenberg", Heisenberg(n, 3), n, 3)
		add("heisenberg", Heisenberg(n, 10), n, 10)
	}
	for n := 4; n <= 18; n++ { // 15
		add("qpe", QPE(n), n)
	}
	for n := 4; n <= 12; n++ { // 18
		add("grover", Grover(n, 1), n, 1)
		add("grover", Grover(n, 2), n, 2)
	}
	for n := 4; n <= 16; n += 2 { // 7 (2n+1 qubits keeps within 36)
		add("adder", Adder(n), n)
	}
	for n := 3; n <= 10; n++ { // 8
		add("barenco_tof", BarencoTof(n), n)
	}
	for n := 3; n <= 10; n++ { // 8
		add("tof", Tof(n), n)
	}
	for n := 3; n <= 9; n++ { // 7
		add("gf2mult", GF2Mult(n), n)
	}
	for n := 4; n <= 10; n++ { // 7
		add("multiplier", Multiplier(n), n)
	}
	for n := 4; n <= 10; n++ { // 7
		add("vbe_adder", VBEAdder(n), n)
	}
	for n := 6; n <= 30; n += 4 { // 7
		add("bv", BernsteinVazirani(n, int64(0x5a5a5a5a)&((1<<uint(n))-1)), n)
	}
	for n := 6; n <= 26; n += 4 { // 6
		add("dj", DeutschJozsa(n, int64(0x33333333)&((1<<uint(n))-1)), n)
	}
	for n := 6; n <= 22; n += 4 { // 5
		add("hiddenshift", HiddenShift(n, int64(0x2d), int64(n)), n)
	}
	for n := 4; n <= 16; n += 2 { // 7
		add("wstate", WState(n), n)
	}
	// Random Clifford+T circuits round the suite out to exactly 247,
	// standing in for the miscellaneous reversible/mapping benchmarks of
	// prior work (documented in DESIGN.md §3).
	i := 0
	for len(out) < SuiteSize {
		n := 4 + (i*3)%16
		gates := 60 + 40*(i%9)
		add("random", RandomCliffordT(n, gates, int64(1000+i)), n, gates)
		i++
	}
	if len(out) != SuiteSize {
		panic(fmt.Sprintf("benchmarks: suite has %d circuits, want %d", len(out), SuiteSize))
	}
	return out
}

// CliffordTSuite returns the 247-circuit FTQC suite (Q4): only families
// whose rotation angles are exact multiples of π/4, so every circuit is
// exactly representable in Clifford+T.
func CliffordTSuite() []Named {
	var out []Named
	add := func(family string, c *circuit.Circuit, params ...int) {
		out = append(out, Named{Name: fmtName(family, params...), Family: family, Circuit: c})
	}
	for n := 3; n <= 14; n++ { // 12
		add("barenco_tof", BarencoTof(n), n)
	}
	for n := 3; n <= 16; n++ { // 14
		add("tof", Tof(n), n)
	}
	for n := 4; n <= 16; n++ { // 13 (2n+1 qubits keeps within 36)
		add("adder", Adder(n), n)
	}
	for n := 4; n <= 12; n++ { // 9
		add("vbe_adder", VBEAdder(n), n)
	}
	for n := 3; n <= 12; n++ { // 10
		add("gf2mult", GF2Mult(n), n)
	}
	for n := 4; n <= 12; n++ { // 9 (3n qubits keeps within 36)
		add("multiplier", Multiplier(n), n)
	}
	for n := 4; n <= 13; n++ { // 20
		add("grover", Grover(n, 1), n, 1)
		add("grover", Grover(n, 2), n, 2)
	}
	for n := 4; n <= 36; n += 2 { // 17
		add("ghz", GHZ(n), n)
	}
	for n := 6; n <= 30; n += 4 { // 7
		add("bv", BernsteinVazirani(n, int64(0x5a5a5a5a)&((1<<uint(n))-1)), n)
	}
	for n := 6; n <= 26; n += 4 { // 6
		add("dj", DeutschJozsa(n, int64(0x33333333)&((1<<uint(n))-1)), n)
	}
	for n := 6; n <= 22; n += 4 { // 5
		add("hiddenshift", HiddenShift(n, int64(0x2d), int64(n)), n)
	}
	i := 0
	for len(out) < SuiteSize {
		n := 4 + (i*5)%20
		gates := 80 + 60*(i%11)
		add("random", RandomCliffordT(n, gates, int64(9000+i)), n, gates)
		i++
	}
	if len(out) != SuiteSize {
		panic(fmt.Sprintf("benchmarks: cliffordt suite has %d circuits, want %d", len(out), SuiteSize))
	}
	return out
}

// ForGateSet translates a suite into a target gate set (the "input circuit
// is already decomposed into the target gate set" preprocessing of §6).
func ForGateSet(suite []Named, gs *gateset.GateSet) ([]Named, error) {
	out := make([]Named, 0, len(suite))
	for _, b := range suite {
		c, err := gateset.Translate(b.Circuit, gs)
		if err != nil {
			return nil, fmt.Errorf("benchmarks: %s for %s: %w", b.Name, gs.Name, err)
		}
		out = append(out, Named{Name: b.Name, Family: b.Family, Circuit: c})
	}
	return out, nil
}

// SuiteFor returns the appropriate 247-circuit suite translated into gs:
// the Clifford+T suite for the finite set, the NISQ suite otherwise.
func SuiteFor(gs *gateset.GateSet) ([]Named, error) {
	if gs.Name == gateset.CliffordT.Name {
		return ForGateSet(CliffordTSuite(), gs)
	}
	return ForGateSet(Suite(), gs)
}

// ByName retrieves one benchmark from a suite.
func ByName(suite []Named, name string) (Named, bool) {
	for _, b := range suite {
		if b.Name == name {
			return b, true
		}
	}
	return Named{}, false
}
