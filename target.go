package guoq

import (
	"encoding/json"
	"fmt"

	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/gateset"
)

// GateSet describes a target gate vocabulary — the public value type behind
// Options.Target and RegisterGateSet. The paper's five evaluation sets are
// built in; a GateSet lets callers optimize for any other hardware basis:
//
//	czSet := &guoq.GateSet{
//		Name:         "cz-superconducting",
//		Architecture: "superconducting",
//		Basis:        []string{"rz", "sx", "x", "cz"},
//	}
//	guoq.RegisterGateSet(czSet)                  // addressable by name, or
//	sess, _ := guoq.Start(ctx, c, guoq.Options{Target: czSet}) // pass directly
//
// Translation into a custom set uses capability detection over the basis
// (any universal continuous 1q vocabulary we know an Euler factorization
// for, CZ- or Rxx-style entanglers for CX, the Clifford+T vocabulary for
// finite sets); bases beyond those capabilities supply a Decompose hook.
type GateSet struct {
	// Name identifies the set (Options.Target accepts it once registered).
	// Required, and distinct from the built-in names.
	Name string
	// Basis lists the native gates in OpenQASM-style lower case ("rz",
	// "sx", "cz", ...); see the package-level gate constructors for the
	// supported vocabulary. Required.
	Basis []string
	// Architecture is free-form metadata ("superconducting", "ion trap",
	// ...); "ion trap" selects the ion-trap device fidelity model.
	Architecture string
	// Decompose, when set, lowers a non-native gate into an equivalent
	// sequence (translated recursively). It is consulted before the
	// built-in lowerings, so it can override any of them; return ok =
	// false to fall through. The sequence must reproduce g's unitary up to
	// global phase and must not re-emit g itself.
	Decompose func(g Gate) ([]Gate, bool)
	// GateErrors gives per-gate error rates for the fidelity model (exact,
	// no synthetic per-qubit spread); OneQubitError and TwoQubitError
	// override the per-arity defaults. All zero selects the architecture's
	// default device model.
	GateErrors    map[string]float64
	OneQubitError float64
	TwoQubitError float64
}

// compile validates the public description and lowers it to the internal
// representation the optimizer stack consumes.
func (gs *GateSet) compile() (*gateset.GateSet, error) {
	if gs == nil {
		return nil, fmt.Errorf("guoq: nil GateSet")
	}
	// Built-in names are reserved even for unregistered ad-hoc targets:
	// name-keyed machinery (rule libraries, the cleanup and phase-fold
	// emitters) would silently resolve to the built-in set and apply its
	// transformations to a circuit in a different basis.
	for _, b := range gateset.All() {
		if b.Name == gs.Name {
			return nil, fmt.Errorf("guoq: gate set name %q is reserved for the built-in set", gs.Name)
		}
	}
	names := make([]gate.Name, len(gs.Basis))
	for i, b := range gs.Basis {
		names[i] = gate.Name(b)
	}
	igs, err := gateset.New(gs.Name, gs.Architecture, names...)
	if err != nil {
		return nil, err
	}
	igs.Decompose = gs.Decompose
	if len(gs.GateErrors) > 0 {
		igs.GateErrors = make(map[gate.Name]float64, len(gs.GateErrors))
		for n, e := range gs.GateErrors {
			if _, ok := gate.SpecOf(gate.Name(n)); !ok {
				return nil, fmt.Errorf("guoq: gate set %q: unknown gate %q in GateErrors", gs.Name, n)
			}
			if e < 0 || e >= 1 {
				return nil, fmt.Errorf("guoq: gate set %q: error rate for %q must be in [0, 1), got %g", gs.Name, n, e)
			}
			igs.GateErrors[gate.Name(n)] = e
		}
	}
	if gs.OneQubitError < 0 || gs.OneQubitError >= 1 || gs.TwoQubitError < 0 || gs.TwoQubitError >= 1 {
		return nil, fmt.Errorf("guoq: gate set %q: error rates must be in [0, 1)", gs.Name)
	}
	igs.OneQubitError = gs.OneQubitError
	igs.TwoQubitError = gs.TwoQubitError
	return igs, nil
}

// Translate decomposes a circuit into this gate set, preserving the
// unitary up to global phase — the per-target form of the package-level
// Translate, usable without registering the set.
func (gs *GateSet) Translate(c *Circuit) (*Circuit, error) {
	igs, err := gs.compile()
	if err != nil {
		return nil, err
	}
	return gateset.Translate(c, igs)
}

// RegisterGateSet makes a custom gate set addressable by name everywhere a
// gate set name is accepted: Options.GateSet and Options.Target, Translate,
// EstimateFidelity, and the CLIs. Built-in names cannot be replaced, and a
// second registration under the same name (other than re-registering the
// exact same description) is an error. Registration snapshots the
// description — later mutation of gs does not affect the registered set.
func RegisterGateSet(gs *GateSet) error {
	igs, err := gs.compile()
	if err != nil {
		return err
	}
	return gateset.Register(igs)
}

// LookupGateSet returns the public description of an addressable gate set
// — built-in or registered — for display and introspection (guoq
// -list-gatesets). The description is a copy; Decompose hooks are not
// included.
func LookupGateSet(name string) (*GateSet, error) {
	igs, err := gateset.ByName(name)
	if err != nil {
		return nil, err
	}
	out := &GateSet{
		Name:          igs.Name,
		Architecture:  igs.Architecture,
		Basis:         make([]string, len(igs.Gates)),
		OneQubitError: igs.OneQubitError,
		TwoQubitError: igs.TwoQubitError,
	}
	for i, g := range igs.Gates {
		out.Basis[i] = string(g)
	}
	if len(igs.GateErrors) > 0 {
		out.GateErrors = make(map[string]float64, len(igs.GateErrors))
		for n, e := range igs.GateErrors {
			out.GateErrors[string(n)] = e
		}
	}
	return out, nil
}

// gateSetSpec is the JSON wire form of a GateSet, for loading custom
// targets from configuration files (guoqbench -gateset-file).
type gateSetSpec struct {
	Name          string             `json:"name"`
	Architecture  string             `json:"architecture,omitempty"`
	Basis         []string           `json:"basis"`
	GateErrors    map[string]float64 `json:"gate_errors,omitempty"`
	OneQubitError float64            `json:"one_qubit_error,omitempty"`
	TwoQubitError float64            `json:"two_qubit_error,omitempty"`
}

// ParseGateSetJSON decodes a gate set description from JSON:
//
//	{"name": "cz-sc", "architecture": "superconducting",
//	 "basis": ["rz", "sx", "x", "cz"],
//	 "one_qubit_error": 2.5e-4, "two_qubit_error": 6e-3}
//
// The description is validated (known gates, sane error rates) before it is
// returned; Decompose hooks cannot be expressed in JSON — bases that need
// one must be constructed in code.
func ParseGateSetJSON(data []byte) (*GateSet, error) {
	var spec gateSetSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("guoq: bad gate set JSON: %w", err)
	}
	gs := &GateSet{
		Name:          spec.Name,
		Architecture:  spec.Architecture,
		Basis:         spec.Basis,
		GateErrors:    spec.GateErrors,
		OneQubitError: spec.OneQubitError,
		TwoQubitError: spec.TwoQubitError,
	}
	if _, err := gs.compile(); err != nil {
		return nil, err
	}
	return gs, nil
}

// resolveTarget maps Options' target selection — Options.Target as a name
// or *GateSet, or the legacy Options.GateSet name — to the internal set.
func resolveTarget(o Options) (*gateset.GateSet, error) {
	if o.Target == nil {
		if o.GateSet == "" {
			return nil, fmt.Errorf("guoq: Options.GateSet or Options.Target is required (known names: %v)", GateSets())
		}
		return gateset.ByName(o.GateSet)
	}
	if o.GateSet != "" {
		return nil, fmt.Errorf("guoq: Options.GateSet and Options.Target are mutually exclusive (set one)")
	}
	switch t := o.Target.(type) {
	case string:
		return gateset.ByName(t)
	case *GateSet:
		return t.compile()
	case GateSet:
		return t.compile()
	default:
		return nil, fmt.Errorf("guoq: Options.Target must be a gate set name or a *guoq.GateSet, got %T", o.Target)
	}
}
