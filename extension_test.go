package guoq

import (
	"context"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/linalg"
	"github.com/guoq-dev/guoq/internal/verify"
)

// newCZSet returns a fresh CZ-entangler superconducting target — the
// running example of a gate set outside the paper's five.
func newCZSet(name string) *GateSet {
	return &GateSet{
		Name:          name,
		Architecture:  "superconducting",
		Basis:         []string{"rz", "sx", "x", "cz"},
		OneQubitError: 2.5e-4,
		TwoQubitError: 6e-3,
	}
}

// testInput builds a small circuit with redundancy for the optimizer.
func testInput() *Circuit {
	c := NewCircuit(3)
	c.Append(H(0), CX(0, 1), CX(0, 1), T(2), Tdg(2), CCX(0, 1, 2), Swap(1, 2), Rz(0.4, 0))
	return c
}

// TestCustomGateSetEndToEnd: a custom gate set registered through the
// public API runs under Start — translation, search, and output all stay
// inside the custom basis, and the result is ε-equivalent to the input.
func TestCustomGateSetEndToEnd(t *testing.T) {
	set := newCZSet("cz-e2e")
	if err := RegisterGateSet(set); err != nil {
		t.Fatal(err)
	}
	in := testInput()
	native, err := Translate(in, "cz-e2e") // by registered name
	if err != nil {
		t.Fatal(err)
	}
	if !linalg.EqualUpToPhase(native.Unitary(), in.Unitary(), 1e-9) {
		t.Fatal("translation into the custom set changed the unitary")
	}
	sess, err := Start(context.Background(), native, Options{
		GateSet: "cz-e2e",
		Budget:  300 * time.Millisecond,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, res, err := sess.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.GateSet != "cz-e2e" {
		t.Fatalf("Result.GateSet = %q", res.GateSet)
	}
	if res.TwoQubitAfter > res.TwoQubitBefore {
		t.Fatalf("made circuit worse: %d -> %d", res.TwoQubitBefore, res.TwoQubitAfter)
	}
	for _, g := range out.Gates {
		switch string(g.Name) {
		case "rz", "sx", "x", "cz":
		default:
			t.Fatalf("non-native gate %s in output", g.Name)
		}
	}
	if !linalg.EqualUpToPhase(out.Unitary(), native.Unitary(), 1e-7) {
		t.Fatal("optimization broke semantics on the custom set")
	}
	if f, err := EstimateFidelity(out, "cz-e2e"); err != nil || f <= 0 || f >= 1 {
		t.Fatalf("EstimateFidelity on custom set = %g, %v", f, err)
	}
}

// TestOptionsTargetValue: Options.Target accepts a *GateSet directly, with
// no registration — ad-hoc targets stay run-local.
func TestOptionsTargetValue(t *testing.T) {
	set := newCZSet("cz-adhoc")
	native, err := set.Translate(testInput())
	if err != nil {
		t.Fatal(err)
	}
	out, res, err := Optimize(native, Options{
		Target: set,
		Budget: 200 * time.Millisecond,
		Seed:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GateSet != "cz-adhoc" {
		t.Fatalf("Result.GateSet = %q", res.GateSet)
	}
	if !linalg.EqualUpToPhase(out.Unitary(), native.Unitary(), 1e-7) {
		t.Fatal("semantics broken")
	}
	// The ad-hoc name must not have leaked into the registry.
	if _, err := LookupGateSet("cz-adhoc"); err == nil {
		t.Fatal("unregistered Target leaked into the registry")
	}
}

// TestTargetValidation pins Options.Target error paths.
func TestTargetValidation(t *testing.T) {
	c := NewCircuit(1)
	c.Append(H(0))
	if _, _, err := Optimize(c, Options{}); err == nil {
		t.Fatal("missing target accepted")
	}
	if _, _, err := Optimize(c, Options{GateSet: "nam", Target: "nam"}); err == nil {
		t.Fatal("GateSet and Target together accepted")
	}
	if _, _, err := Optimize(c, Options{Target: 42}); err == nil {
		t.Fatal("bogus Target type accepted")
	}
	if _, _, err := Optimize(c, Options{Target: &GateSet{Name: "x", Basis: []string{"h", "nope"}}}); err == nil {
		t.Fatal("unknown basis gate accepted")
	}
	if err := (Options{Target: "nam"}).Validate(); err != nil {
		t.Fatalf("Target by name failed Validate: %v", err)
	}
}

// TestParseGateSetJSON round-trips the JSON form and rejects bad specs.
func TestParseGateSetJSON(t *testing.T) {
	gs, err := ParseGateSetJSON([]byte(`{"name":"js-cz","architecture":"superconducting",
		"basis":["rz","sx","x","cz"],"two_qubit_error":6e-3,
		"gate_errors":{"sx":1e-4}}`))
	if err != nil {
		t.Fatal(err)
	}
	if gs.Name != "js-cz" || len(gs.Basis) != 4 || gs.GateErrors["sx"] != 1e-4 {
		t.Fatalf("parsed %+v", gs)
	}
	if _, err := ParseGateSetJSON([]byte(`{"name":"bad","basis":["frob"]}`)); err == nil {
		t.Fatal("unknown gate accepted")
	}
	if _, err := ParseGateSetJSON([]byte(`{"name":"bad","basis":["h"],"two_qubit_error":2}`)); err == nil {
		t.Fatal("error rate ≥ 1 accepted")
	}
	if _, err := ParseGateSetJSON([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestNewRuleVerification: NewRule machine-verifies equivalence — valid
// rules (with symbolic angles, negation, sums) construct; invalid ones are
// rejected with the measured divergence.
func TestNewRuleVerification(t *testing.T) {
	if _, err := NewRule("rz-merge", 1,
		[]Gate{Rz(Angle(0), 0), Rz(Angle(1), 0)},
		[]Gate{Rz(AngleSum(0, 1), 0)}); err != nil {
		t.Fatalf("valid merge rule rejected: %v", err)
	}
	if _, err := NewRule("cx-rz-flip", 2,
		[]Gate{CX(0, 1), Rz(Angle(0), 0), CX(0, 1)},
		[]Gate{Rz(Angle(0), 0)}); err != nil {
		t.Fatalf("valid conjugation rule rejected: %v", err)
	}
	if _, err := NewRule("x-rz-flip", 1,
		[]Gate{X(0), Rz(Angle(0), 0), X(0)},
		[]Gate{Rz(AngleNeg(0), 0)}); err != nil {
		t.Fatalf("valid negation rule rejected: %v", err)
	}
	// Not an equivalence: h·h ≠ x.
	if _, err := NewRule("bogus", 1, []Gate{H(0), H(0)}, []Gate{X(0)}); err == nil {
		t.Fatal("non-equivalent rule accepted")
	}
	// AngleNeg is replacement-only.
	if _, err := NewRule("neg-in-pattern", 1,
		[]Gate{Rz(AngleNeg(0), 0)}, []Gate{Rz(AngleNeg(0), 0)}); err == nil {
		t.Fatal("AngleNeg accepted in a pattern")
	}
	// Empty patterns are invalid.
	if _, err := NewRule("empty", 1, nil, nil); err == nil {
		t.Fatal("empty pattern accepted")
	}
}

// TestCustomRuleRuns: a rule registered per-run is sampled by the search
// and fires. The rule collapses the planted sx·sx pairs that nothing in
// the nam library handles... (sx is not nam-native, so use a custom set
// where only the custom rule can do this particular reduction).
func TestCustomRuleRuns(t *testing.T) {
	set := newCZSet("cz-rule")
	// sx·sx = x (up to phase): natively representable, and the custom set
	// has no built-in rule library at all, so any rule-driven reduction
	// proves the user rule executed.
	rule, err := NewRule("sxsx-to-x", 1,
		[]Gate{SX(0), SX(0)},
		[]Gate{X(0)})
	if err != nil {
		t.Fatal(err)
	}
	in := NewCircuit(2)
	for q := 0; q < 2; q++ {
		in.Append(SX(q), SX(q))
	}
	in.Append(CZ(0, 1), SX(0), SX(0))
	out, res, err := Optimize(in, Options{
		Target:          set,
		Budget:          200 * time.Millisecond,
		Seed:            3,
		Transformations: []Transformation{rule},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !linalg.EqualUpToPhase(out.Unitary(), in.Unitary(), 1e-7) {
		t.Fatal("custom rule run broke semantics")
	}
	if res.After >= res.Before {
		t.Fatalf("custom rule never reduced the circuit: %d -> %d gates", res.Before, res.After)
	}

	// A rule whose replacement leaves the target set must fail Start.
	alien, err := NewRule("h-ident", 1, []Gate{H(0), H(0)}, []Gate{})
	if err != nil {
		t.Fatal(err)
	}
	_ = alien
	hRule, err := NewRule("x-to-hzh", 1,
		[]Gate{X(0)},
		[]Gate{H(0), Z(0), H(0)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Start(context.Background(), NewCircuit(1), Options{
		Target:          set,
		Transformations: []Transformation{hRule},
	}); err == nil {
		t.Fatal("rule with non-native replacement accepted by Start")
	}
}

// countingSynth drops near-identity rz gates, reporting the measured ε —
// a minimal honest external synthesizer.
type countingSynth struct {
	calls     atomic.Int64
	proposals atomic.Int64
}

func (s *countingSynth) Name() string { return "tiny-rz-dropper" }

func (s *countingSynth) Synthesize(_ context.Context, sub *Circuit, eps float64) (*Circuit, float64, error) {
	s.calls.Add(1)
	out := NewCircuit(sub.NumQubits)
	dropped := false
	for _, g := range sub.Gates {
		if g.Name == gate.Rz && math.Abs(g.Params[0]) < 5e-3 && g.Params[0] != 0 {
			dropped = true
			continue
		}
		out.Gates = append(out.Gates, g.Clone())
	}
	if !dropped {
		return nil, 0, ErrNoSolution
	}
	consumed := linalg.HSDistance(sub.Unitary(), out.Unitary())
	if consumed > eps {
		return nil, 0, ErrNoSolution
	}
	s.proposals.Add(1)
	return out, consumed, nil
}

// TestCustomSynthesizerMetamorphic is the acceptance-criteria harness: a
// user-supplied Synthesizer under guoq.Start on a circuit with planted
// approximate redundancy. The run must stay ε-equivalent to the input
// (checked by the same randomized-state verification the metamorphic
// harness uses), the consumed ε must be debited from Options.Epsilon into
// Result.Error, and the accounted bound must dominate the true distance.
func TestCustomSynthesizerMetamorphic(t *testing.T) {
	const epsF = 1e-2
	// nam-native input with tiny planted rotations: removable only
	// approximately, so any reduction must consume budget.
	in := NewCircuit(3)
	for i := 0; i < 6; i++ {
		q := i % 3
		in.Append(CX(q, (q+1)%3), Rz(1e-3, q), H((q+2)%3))
	}
	syn := &countingSynth{}
	sess, err := Start(context.Background(), in, Options{
		GateSet:         "nam",
		Epsilon:         epsF,
		Budget:          400 * time.Millisecond,
		Seed:            4,
		Transformations: []Transformation{UseSynthesizer(syn)},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, res, err := sess.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if syn.calls.Load() == 0 {
		t.Fatal("user synthesizer was never sampled by the search")
	}
	if res.Error <= 0 {
		t.Fatalf("Result.Error = %g: consumed ε was not debited from Options.Epsilon", res.Error)
	}
	if res.Error > epsF {
		t.Fatalf("Result.Error %g exceeds Options.Epsilon %g", res.Error, epsF)
	}
	if d := linalg.HSDistance(in.Unitary(), out.Unitary()); d > res.Error+1e-9 {
		t.Fatalf("true distance %g exceeds the debited bound %g", d, res.Error)
	}
	// The metamorphic equivalence harness's verdict on the same run.
	if err := verify.MustBeEquivalent(in, out, epsF*2+1e-6, 4); err != nil {
		t.Fatal(err)
	}
	// Resume composes the spent budget: a follow-up run may only consume
	// what is left.
	sess2, err := Resume(context.Background(), out, res, Options{
		GateSet:         "nam",
		Epsilon:         epsF,
		Budget:          100 * time.Millisecond,
		Seed:            5,
		Transformations: []Transformation{UseSynthesizer(syn)},
	})
	if err != nil {
		t.Fatal(err)
	}
	out2, res2, err := sess2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Error+res2.Error > epsF {
		t.Fatalf("composed spend %g + %g exceeds the original budget %g", res.Error, res2.Error, epsF)
	}
	if d := linalg.HSDistance(in.Unitary(), out2.Unitary()); d > res.Error+res2.Error+1e-9 {
		t.Fatalf("composed distance %g exceeds composed bound %g", d, res.Error+res2.Error)
	}
}

// TestRegisterTransformationGlobal: a globally registered transformation
// applies to runs targeting its gate set and leaves other sets alone.
func TestRegisterTransformationGlobal(t *testing.T) {
	set := newCZSet("cz-global")
	if err := RegisterGateSet(set); err != nil {
		t.Fatal(err)
	}
	rule := MustNewRule("sxsx-to-x-global", 1, []Gate{SX(0), SX(0)}, []Gate{X(0)})
	if err := RegisterTransformation("cz-global", rule); err != nil {
		t.Fatal(err)
	}
	in := NewCircuit(2)
	in.Append(SX(0), SX(0), CZ(0, 1), SX(1), SX(1))
	out, res, err := Optimize(in, Options{GateSet: "cz-global", Budget: 200 * time.Millisecond, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.After >= res.Before {
		t.Fatalf("globally registered rule never fired: %d -> %d", res.Before, res.After)
	}
	if !linalg.EqualUpToPhase(out.Unitary(), in.Unitary(), 1e-7) {
		t.Fatal("semantics broken")
	}
	// Other gate sets are untouched by the filtered registration: a seeded
	// nam run equals a pristine nam run.
	c := NewCircuit(2)
	c.Append(H(0), CX(0, 1), CX(0, 1), H(0), Rz(0.3, 1))
	o := Options{GateSet: "nam", Seed: 7, MaxIters: 150, Budget: 10 * time.Second}
	a, _, err := Optimize(c, o)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Optimize(c, o)
	if err != nil {
		t.Fatal(err)
	}
	if !linalg.EqualUpToPhase(a.Unitary(), b.Unitary(), 1e-12) || a.Len() != b.Len() {
		t.Fatal("filtered global registration perturbed another gate set")
	}
}

// TestRegisterGateSetRejects: registration validation.
func TestRegisterGateSetRejects(t *testing.T) {
	if err := RegisterGateSet(&GateSet{Name: "nam", Basis: []string{"h"}}); err == nil {
		t.Fatal("built-in name accepted")
	}
	if err := RegisterGateSet(&GateSet{Name: "", Basis: []string{"h"}}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := RegisterGateSet(&GateSet{Name: "bad-basis", Basis: []string{"warp"}}); err == nil {
		t.Fatal("unknown gate accepted")
	}
}

// TestAdHocTargetStaysNative is the regression pin for the review finding
// that cleanup/phase-folding emitted non-native rz gates for ad-hoc
// (unregistered) finite targets: a full Start run on such a target must
// end inside the basis.
func TestAdHocTargetStaysNative(t *testing.T) {
	set := &GateSet{
		Name:         "adhoc-ft",
		Architecture: "fault tolerant",
		Basis:        []string{"h", "s", "sdg", "t", "tdg", "x", "cz"},
	}
	in := NewCircuit(2)
	in.Append(T(0), T(0), H(1), CZ(0, 1), Tdg(0), Tdg(0), H(1))
	out, _, err := Optimize(in, Options{
		Target: set,
		Budget: 150 * time.Millisecond,
		Seed:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[string]bool{"h": true, "s": true, "sdg": true, "t": true, "tdg": true, "x": true, "cz": true}
	for _, g := range out.Gates {
		if !allowed[string(g.Name)] {
			t.Fatalf("ad-hoc target run emitted non-native gate %s", g.Name)
		}
	}
	if !linalg.EqualUpToPhase(out.Unitary(), in.Unitary(), 1e-7) {
		t.Fatal("semantics broken")
	}
}

// TestBuiltinNamesReserved: built-in names are rejected even for ad-hoc
// (unregistered) Target values, where name-keyed machinery would resolve
// to the wrong set.
func TestBuiltinNamesReserved(t *testing.T) {
	c := NewCircuit(1)
	c.Append(H(0))
	if _, _, err := Optimize(c, Options{Target: &GateSet{Name: "ionq", Basis: []string{"rz", "sx", "x", "cz"}}}); err == nil {
		t.Fatal("built-in name accepted for an ad-hoc Target")
	}
	// Re-registering the same description is idempotent; a different one
	// under the same name errors.
	set := newCZSet("cz-idem")
	if err := RegisterGateSet(set); err != nil {
		t.Fatal(err)
	}
	if err := RegisterGateSet(set); err != nil {
		t.Fatalf("idempotent re-registration failed: %v", err)
	}
	changed := newCZSet("cz-idem")
	changed.Basis = []string{"rz", "sx", "x", "cx"}
	if err := RegisterGateSet(changed); err == nil {
		t.Fatal("conflicting re-registration accepted")
	}
}
