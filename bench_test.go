// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation plus the ablations called out in DESIGN.md. Figure benchmarks
// run a compressed configuration (subsampled suite, milliseconds-scale
// budgets) and report the comparative shape as custom metrics:
//
//	frac_better   fraction of benchmarks where GUOQ strictly wins
//	frac_worse    fraction where the comparator wins
//	guoq_mean     suite-mean metric for GUOQ (reduction or fidelity)
//	tool_mean     suite-mean metric for the comparator
//
// Full-scale regeneration (larger budgets, full 247-circuit suite) is
// `go run ./cmd/guoqbench -exp <id> -limit 0 -budget 2s`; EXPERIMENTS.md
// records measured runs against the paper's numbers.
package guoq

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/guoq-dev/guoq/internal/baselines"
	"github.com/guoq-dev/guoq/internal/benchmarks"
	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/experiments"
	"github.com/guoq-dev/guoq/internal/gate"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/opt"
	"github.com/guoq-dev/guoq/internal/phasepoly"
	"github.com/guoq-dev/guoq/internal/rewrite"
	"github.com/guoq-dev/guoq/internal/synth/numeric"
)

func benchConfig() experiments.Config {
	return experiments.Config{
		Budget:     100 * time.Millisecond,
		Trials:     2,
		SuiteLimit: 12,
		Epsilon:    1e-8,
		Seed:       1,
	}
}

func reportSummaries(b *testing.B, sums []experiments.Summary) {
	b.Helper()
	for _, s := range sums {
		total := float64(s.Better + s.Match + s.Worse)
		if total == 0 {
			continue
		}
		label := strings.ReplaceAll(s.Tool+"/"+s.Metric, " ", "_")
		b.ReportMetric(float64(s.Better)/total, "frac_better:"+label)
		b.ReportMetric(float64(s.Worse)/total, "frac_worse:"+label)
		b.ReportMetric(s.GUOQMean, "guoq_mean:"+label)
		b.ReportMetric(s.ToolMean, "tool_mean:"+label)
	}
}

// --- Figure/table benchmarks -----------------------------------------------

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sums, err := experiments.Fig1(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSummaries(b, sums)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig7(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			// Report final best counts per approach for barenco_tof_10.
			for _, s := range series {
				if s.Bench != "barenco_tof_10" || len(s.Counts) == 0 {
					continue
				}
				label := strings.ReplaceAll(s.Approach, " ", "_")
				b.ReportMetric(float64(s.Counts[len(s.Counts)-1]), "final_2q:"+label)
			}
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sums, err := experiments.Fig8(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSummaries(b, sums)
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sums, err := experiments.Fig9(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSummaries(b, sums)
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sums, err := experiments.Fig10(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSummaries(b, sums)
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sums, err := experiments.Fig11(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSummaries(b, sums)
		}
	}
}

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sums, err := experiments.Fig12(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSummaries(b, sums)
		}
	}
}

func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sums, err := experiments.Fig13(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSummaries(b, sums)
		}
	}
}

func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sums, err := experiments.Fig14(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSummaries(b, sums)
		}
	}
}

func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hs, err := experiments.Fig15(experiments.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, h := range hs {
				for k, n := range h.Buckets {
					b.ReportMetric(float64(n), fmt.Sprintf("n_1e%d:%s", k, h.GateSet))
				}
			}
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Table2(experiments.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Table3(experiments.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ----------

// ablationRun measures GUOQ's mean 2q reduction over a small subset under a
// modified option set.
func ablationRun(b *testing.B, tune func(*opt.Options)) float64 {
	b.Helper()
	gs := gateset.IBMEagle
	suite, err := benchmarks.SuiteFor(gs)
	if err != nil {
		b.Fatal(err)
	}
	names := []string{"barenco_tof_4", "tof_5", "adder_6", "vqe_8_2"}
	ts, err := opt.Instantiate(gs, opt.InstantiateOptions{
		EpsilonF: 1e-8, SynthTime: 60 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	var total float64
	for _, name := range names {
		bench, ok := benchmarks.ByName(suite, name)
		if !ok {
			b.Fatalf("missing %s", name)
		}
		opts := opt.DefaultOptions()
		opts.Cost = opt.TwoQubitCost()
		opts.TimeBudget = 250 * time.Millisecond
		opts.Seed = 1
		opts.Async = true
		tune(&opts)
		res := opt.GUOQ(bench.Circuit, ts, opts)
		orig := bench.Circuit.TwoQubitCount()
		if orig > 0 {
			total += 1 - float64(res.Best.TwoQubitCount())/float64(orig)
		}
	}
	return total / float64(len(names))
}

func BenchmarkAblationTemperature(b *testing.B) {
	for _, temp := range []float64{0, 1, 10} {
		b.Run(fmt.Sprintf("t=%g", temp), func(b *testing.B) {
			var red float64
			for i := 0; i < b.N; i++ {
				red = ablationRun(b, func(o *opt.Options) { o.Temperature = temp })
			}
			b.ReportMetric(red, "mean_2q_reduction")
		})
	}
}

func BenchmarkAblationResynthProb(b *testing.B) {
	// Only meaningful in synchronous mode, where the probability gates the
	// fast/slow mix directly.
	for _, p := range []float64{0.0015, 0.015, 0.15} {
		b.Run(fmt.Sprintf("p=%g", p), func(b *testing.B) {
			var red float64
			for i := 0; i < b.N; i++ {
				red = ablationRun(b, func(o *opt.Options) {
					o.Async = false
					o.ResynthProb = p
				})
			}
			b.ReportMetric(red, "mean_2q_reduction")
		})
	}
}

func BenchmarkAblationSyncVsAsync(b *testing.B) {
	for _, async := range []bool{false, true} {
		b.Run(fmt.Sprintf("async=%v", async), func(b *testing.B) {
			var red float64
			for i := 0; i < b.N; i++ {
				red = ablationRun(b, func(o *opt.Options) { o.Async = async })
			}
			b.ReportMetric(red, "mean_2q_reduction")
		})
	}
}

func BenchmarkAblationQubitLimit(b *testing.B) {
	for _, maxQ := range []int{2, 3} {
		b.Run(fmt.Sprintf("maxq=%d", maxQ), func(b *testing.B) {
			gs := gateset.IBMEagle
			ts, err := opt.Instantiate(gs, opt.InstantiateOptions{
				EpsilonF: 1e-8, MaxQubits: maxQ, SynthTime: 60 * time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			suite, _ := benchmarks.SuiteFor(gs)
			bench, _ := benchmarks.ByName(suite, "tof_5")
			var red float64
			for i := 0; i < b.N; i++ {
				opts := opt.DefaultOptions()
				opts.Cost = opt.TwoQubitCost()
				opts.TimeBudget = 250 * time.Millisecond
				opts.Async = true
				opts.Seed = 1
				res := opt.GUOQ(bench.Circuit, ts, opts)
				red = 1 - float64(res.Best.TwoQubitCount())/float64(bench.Circuit.TwoQubitCount())
			}
			b.ReportMetric(red, "2q_reduction_tof5")
		})
	}
}

// --- Parallel engine --------------------------------------------------------

// BenchmarkParallel compares the portfolio and partition-parallel engines
// against the single-threaded loop at equal wall-clock budget.
func BenchmarkParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sums, err := experiments.Parallel(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSummaries(b, sums)
		}
	}
}

// TestPortfolioNoWorseThanSingleWorker is the scaling acceptance check:
// with 4 workers at the same wall-clock budget, the portfolio's mean
// two-qubit count over a suite sample must not exceed the single-worker
// mean. Equal wall-clock on multi-core hardware means equal *per-worker*
// iteration counts (workers run simultaneously), so the comparison runs
// both engines synchronously with the same per-worker iteration bound and
// migration disabled — fully deterministic on any host (worker 0 then
// reproduces the equally-seeded single run exactly, so the portfolio
// minimum provably cannot be worse), where wall-clock budgets on
// time-sliced CI runners would measure scheduler noise instead of the
// algorithm.
func TestPortfolioNoWorseThanSingleWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second comparison")
	}
	gs := gateset.IBMQ20
	suite, err := benchmarks.SuiteFor(gs)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := opt.Instantiate(gs, opt.InstantiateOptions{
		EpsilonF:  1e-8,
		SynthTime: 15 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"barenco_tof_4", "tof_5", "adder_6", "vqe_8_2", "qft_8", "gf2mult_4"}
	var singleTotal, portfolioTotal int
	for _, name := range names {
		bench, ok := benchmarks.ByName(suite, name)
		if !ok {
			t.Fatalf("missing benchmark %s", name)
		}
		for seed := int64(1); seed <= 2; seed++ {
			opts := opt.DefaultOptions()
			opts.Cost = opt.TwoQubitCost()
			opts.TimeBudget = 0
			opts.MaxIters = 500 // per worker — the equal-wall-clock unit
			opts.Seed = seed
			opts.Async = false
			opts.WarmStart = true
			opts.ExchangeEvery = -1 // independent workers: deterministic
			singleTotal += opt.GUOQ(bench.Circuit, ts, opts).Best.TwoQubitCount()
			portfolioTotal += opt.Portfolio(bench.Circuit, ts, opts, 4).Best.TwoQubitCount()
		}
	}
	t.Logf("mean 2q over %d runs: single=%.1f portfolio=%.1f",
		2*len(names), float64(singleTotal)/float64(2*len(names)), float64(portfolioTotal)/float64(2*len(names)))
	if portfolioTotal > singleTotal {
		t.Errorf("portfolio mean 2q count %d exceeds single-worker %d at equal per-worker iterations",
			portfolioTotal, singleTotal)
	}
}

// --- Two-qubit guardrail ----------------------------------------------------

// guardrailExpect pins the two-qubit count of the deterministic rewrite-only
// optimization of each family's smallest benchmark (ibmq20, seed 1, 400
// synchronous iterations). The run is fully deterministic — rules are exact
// and synchronous mode is seeded — so any increase is a real regression in
// the translation or rewrite stack. Improvements show up as a failure too:
// update the pinned value so the gain is kept.
var guardrailExpect = map[string]int{
	"qft":         18,
	"ghz":         3,
	"qaoa":        22,
	"vqe":         6,
	"ising":       50,
	"heisenberg":  90,
	"qpe":         20,
	"grover":      50,
	"adder":       64,
	"barenco_tof": 18,
	"tof":         12,
	"gf2mult":     72,
	"multiplier":  66,
	"vbe_adder":   82,
	"bv":          3,
	"dj":          4,
	"hiddenshift": 6,
	"wstate":      9,
	"random":      47,
}

// guardrailCount deterministically optimizes a circuit with the rewrite-only
// synchronous search and returns the resulting two-qubit count.
func guardrailCount(t *testing.T, ts []opt.Transformation, c *circuit.Circuit) int {
	t.Helper()
	opts := opt.DefaultOptions()
	opts.Cost = opt.TwoQubitCost()
	opts.TimeBudget = 0
	opts.MaxIters = 400
	opts.Seed = 1
	opts.Async = false
	opts.WarmStart = true
	return opt.GUOQ(c, opt.FilterFast(ts), opts).Best.TwoQubitCount()
}

func TestTwoQubitGuardrail(t *testing.T) {
	gs := gateset.IBMQ20
	suite, err := benchmarks.SuiteFor(gs)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := opt.Instantiate(gs, opt.InstantiateOptions{EpsilonF: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	var order []string
	for _, b := range suite {
		if _, seen := got[b.Family]; seen {
			continue // first of each family is its smallest instance
		}
		got[b.Family] = guardrailCount(t, ts, b.Circuit)
		order = append(order, b.Family)
	}
	for _, fam := range order {
		want, ok := guardrailExpect[fam]
		if !ok {
			t.Errorf("family %-12s 2q=%3d — missing from guardrailExpect, add it", fam, got[fam])
			continue
		}
		switch {
		case got[fam] > want:
			t.Errorf("family %-12s regressed: 2q count %d, expected %d", fam, got[fam], want)
		case got[fam] < want:
			t.Errorf("family %-12s improved: 2q count %d, expected %d — update guardrailExpect to lock in the gain", fam, got[fam], want)
		default:
			t.Logf("family %-12s 2q=%3d ok", fam, got[fam])
		}
	}
	for fam := range guardrailExpect {
		if _, ok := got[fam]; !ok {
			t.Errorf("guardrailExpect lists unknown family %q", fam)
		}
	}
}

// --- Microbenchmarks for the substrates -------------------------------------

func BenchmarkUnitary6Q(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := circuit.Random(6, 60, circuit.DefaultTestVocab, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Unitary()
	}
}

// BenchmarkRuleFullPass is the "before" of the incremental-engine pair: the
// pure, stateless API that rebuilds the DAG and rescans every anchor on
// every call.
func BenchmarkRuleFullPass(b *testing.B) {
	rules, _ := rewrite.RulesFor("nam")
	rng := rand.New(rand.NewSource(2))
	c := circuit.Random(16, 600, gateset.Nam.Gates, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rules[i%len(rules)]
		_, _ = rewrite.FullPass(c, r, i%c.Len())
	}
}

// BenchmarkEngineFullPass is the "after": the identical circuit/rule/anchor
// workload through one persistent rewrite.Engine. Each iteration applies
// the pass in place and rolls it back, so — like the pure benchmark, which
// discards its output — every iteration sees the same input circuit; the
// engine keeps its DAG across iterations and serves repeat anchors from
// the per-rule match cache. The acceptance bar is ≥2× fewer allocations
// per op and higher throughput than BenchmarkRuleFullPass.
func BenchmarkEngineFullPass(b *testing.B) {
	rules, _ := rewrite.RulesFor("nam")
	rng := rand.New(rand.NewSource(2))
	c := circuit.Random(16, 600, gateset.Nam.Gates, rng)
	eng := rewrite.NewEngine(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rules[i%len(rules)]
		m := eng.Mark()
		eng.FullPass(r, i%c.Len())
		eng.Rollback(m)
	}
}

func BenchmarkCleanupPass(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	c := circuit.Random(16, 600, gateset.CliffordT.Gates, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rewrite.Cleanup(c, "cliffordt")
	}
}

func BenchmarkPhaseFold(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	c := circuit.Random(16, 600, []gate.Name{gate.T, gate.Tdg, gate.S, gate.X, gate.H, gate.CX}, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = phasepoly.Fold(c, "cliffordt")
	}
}

func BenchmarkGrowConvex(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	c := circuit.Random(16, 600, circuit.DefaultTestVocab, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = circuit.RandomRegion(c, 3, 0, rng)
	}
}

func BenchmarkSynthesize2Q(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	targets := make([]*circuit.Circuit, 8)
	for i := range targets {
		targets[i] = circuit.Random(2, 10, circuit.DefaultTestVocab, rng)
	}
	s := numeric.New(gateset.IBMEagle)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = s.Synthesize(targets[i%len(targets)].Unitary(), 2, 1e-8)
	}
}

func BenchmarkSynthesize3QToffoli(b *testing.B) {
	c := circuit.New(3)
	c.Append(gate.NewCCX(0, 1, 2))
	target := gateset.MustTranslate(c, gateset.IBMEagle).Unitary()
	s := numeric.New(gateset.IBMEagle)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = s.Synthesize(target, 3, 1e-8)
	}
}

func BenchmarkTranslateSuiteSample(b *testing.B) {
	suite := benchmarks.Suite()[:20]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, bench := range suite {
			_, _ = gateset.Translate(bench.Circuit, gateset.IBMEagle)
		}
	}
}

func BenchmarkGUOQEndToEnd(b *testing.B) {
	gs := gateset.IBMEagle
	suite, _ := benchmarks.SuiteFor(gs)
	bench, _ := benchmarks.ByName(suite, "adder_6")
	tool := baselines.NewGUOQ(1e-8)
	cost := opt.TwoQubitCost()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := tool.Optimize(bench.Circuit, gs, cost, 200*time.Millisecond, int64(i))
		if i == b.N-1 {
			b.ReportMetric(float64(out.TwoQubitCount()), "final_2q_adder6")
		}
	}
}
