package guoq

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/guoq-dev/guoq/internal/baselines"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/obs"
	"github.com/guoq-dev/guoq/internal/opt"
)

// ProgressEvent is one record of a Session's Events stream: a cumulative
// snapshot of the search's statistics, aggregated across workers in
// parallel modes. Events are emitted on every improvement and periodically
// as heartbeats; records are dropped (never blocking the search) when the
// consumer falls behind, so treat each event as the latest state rather
// than a complete history — Best and Wait always have the current truth.
type ProgressEvent struct {
	// Elapsed is the time since Start.
	Elapsed time.Duration
	// Iters counts search-loop iterations across all workers.
	Iters int
	// Accepted counts accepted transformations; Rejected is the remainder
	// of Iters (rejected proposals and iterations where no transformation
	// applied).
	Accepted int
	Rejected int
	// AcceptanceRate is Accepted/Iters (0 before the first iteration).
	AcceptanceRate float64
	// BestCost is the current best solution's cost under the session's
	// objective; Error is its accumulated ε upper bound.
	BestCost float64
	Error    float64
	// Migrations counts solutions adopted from Options.Exchanger.
	Migrations int
	// ResynthInFlight is the number of asynchronous resynthesis calls
	// currently running across workers (the resynthesis queue depth).
	ResynthInFlight int
	// Improved marks events emitted because a new global best was found;
	// heartbeat events leave it false.
	Improved bool
	// Dropped is the cumulative number of progress events discarded so far
	// because the consumer lagged behind the stream's buffer. A reader that
	// sees Dropped grow between events knows its history has gaps (Best and
	// Wait always carry the current truth); 0 means the stream is complete
	// up to this event.
	Dropped int
}

// Session is a running optimization started with Start: a cancellable,
// observable handle on the anytime search. All methods are safe for
// concurrent use.
type Session struct {
	base   Result // input-side statistics, computed once at Start
	cost   opt.Cost
	model  gateset.FidelityModel
	cancel context.CancelFunc
	start  time.Time
	events chan ProgressEvent
	done   chan struct{}
	reg    *obs.Registry // the run's registry (caller's or private)

	// dropped counts progress events discarded because the consumer
	// lagged; the next delivered event reports the cumulative total, so
	// the loss is never silent. droppedC mirrors it into the registry.
	dropped  atomic.Int64
	droppedC *obs.Counter

	mu       sync.Mutex
	best     *Circuit          // guarded by mu
	bestErr  float64           // guarded by mu
	bestCost float64           // guarded by mu
	workers  map[int]opt.Event // latest event per worker, for aggregation; guarded by mu
	resynth  map[int]int       // in-flight resynthesis per worker; guarded by mu
	finalC   *Circuit          // guarded by mu
	finalRes *Result           // guarded by mu
}

// Start begins optimizing c under ctx and returns immediately with a
// Session handle. The search ends when ctx is cancelled, its deadline (or
// Options.Budget, which Start turns into a context timeout) expires, Stop
// is called, or Options.MaxIters is exhausted — in every case the session
// resolves to the best solution found, never worse than the input and
// ε-equivalent to it. A nil ctx is treated as context.Background(); with
// Budget 0 such a session runs until explicitly stopped.
func Start(ctx context.Context, c *Circuit, o Options) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	gs, err := resolveTarget(o)
	if err != nil {
		return nil, err
	}
	if !gs.IsNative(c) {
		return nil, fmt.Errorf("guoq: input circuit is not native to %s (use Translate first)", gs.Name)
	}
	if o.Objective == "" && o.Cost == nil {
		o.Objective = DefaultObjective(gs.Name)
	}
	if o.Epsilon == 0 {
		o.Epsilon = 1e-8
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	cost, objective, err := resolveCost(o, gs)
	if err != nil {
		return nil, err
	}
	// Compile registered and per-run transformation extensions against the
	// resolved target now — before any context or goroutine exists — so a
	// malformed extension (non-native rule replacement, nil synthesizer)
	// fails Start cleanly instead of being silently dropped mid-run.
	extras, err := compileExtensions(gs, o.Epsilon, o.Transformations)
	if err != nil {
		return nil, err
	}

	// Options.Budget is sugar for a context deadline: both cancellation
	// paths converge on one mechanism inside the search loop.
	var cancel context.CancelFunc
	if o.Budget > 0 {
		ctx, cancel = context.WithTimeout(ctx, o.Budget)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}

	// The session always has a registry: the caller's when supplied (so
	// several runs can aggregate into one scrape target), a private one
	// otherwise (so Session.Metrics works unconditionally).
	reg := o.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}

	model := gateset.ModelFor(gs)
	s := &Session{
		base: Result{
			GateSet:        gs.Name,
			Objective:      objective,
			Before:         c.Len(),
			TwoQubitBefore: c.TwoQubitCount(),
			TCountBefore:   c.TCount(),
			DepthBefore:    c.Depth(),
			FidelityBefore: model.CircuitFidelity(c),
		},
		cost:     cost,
		model:    model,
		cancel:   cancel,
		start:    time.Now(),
		events:   make(chan ProgressEvent, 64),
		done:     make(chan struct{}),
		best:     c,
		bestCost: cost(c),
		workers:  map[int]opt.Event{},
		resynth:  map[int]int{},
		reg:      reg,
		droppedC: reg.Counter("guoq_events_dropped_total", "Progress events dropped because the consumer lagged."),
	}

	runner := baselines.NewGUOQ(o.Epsilon)
	runner.Async = o.Async
	runner.Parallelism = o.Parallelism
	runner.Partition = o.PartitionParallel
	runner.Adaptive = o.AdaptivePortfolio
	runner.Fixpoint = o.Fixpoint
	runner.Exchanger = o.Exchanger
	runner.MaxIters = o.MaxIters
	runner.OnEvent = s.onEvent
	runner.Metrics = opt.NewMetrics(reg)
	// With no extensions the runner keeps its nil registry — the default
	// portfolio, bit-identical to previous releases for seeded runs.
	if len(extras) > 0 {
		runner.Registry = opt.DefaultRegistry().With(opt.Static(extras...))
	}

	go func() {
		out, stats := runner.OptimizeStatsContext(ctx, c, gs, cost, o.Budget, o.Seed)
		res := s.resultFor(out, stats.BestError, stats.Iters, stats.Accepted, stats.Migrations, time.Since(s.start))
		res.Rules = publicRules(stats.Rules)
		s.mu.Lock()
		s.finalC, s.finalRes = out, res
		s.mu.Unlock()
		close(s.done)
		// All workers have joined: nothing can emit anymore.
		close(s.events)
		cancel() // release the Budget timer
	}()
	return s, nil
}

// onEvent aggregates worker progress into the session state and forwards a
// ProgressEvent to the Events stream (dropping it when the consumer lags —
// the search never blocks on observation).
func (s *Session) onEvent(e opt.Event) {
	// Score outside the lock: Cost may be arbitrary caller code (it must
	// not be able to deadlock against Best), and an expensive objective
	// must not serialize the other workers' events. e.Best is an immutable
	// snapshot and s.cost is set once in Start, so this is race-free.
	var candCost float64
	if e.Best != nil {
		candCost = s.cost(e.Best)
	}
	s.mu.Lock()
	s.workers[e.Worker] = e
	s.resynth[e.Worker] = e.ResynthInFlight
	improved := false
	if e.Best != nil && candCost < s.bestCost {
		s.best, s.bestErr, s.bestCost = e.Best, e.BestErr, candCost
		improved = true
	}
	pe := ProgressEvent{
		Elapsed:  time.Since(s.start),
		BestCost: s.bestCost,
		Error:    s.bestErr,
		Improved: improved,
	}
	for _, w := range s.workers {
		pe.Iters += w.Iters
		pe.Accepted += w.Accepted
		pe.Migrations += w.Migrations
	}
	for _, n := range s.resynth {
		pe.ResynthInFlight += n
	}
	pe.Rejected = pe.Iters - pe.Accepted
	if pe.Iters > 0 {
		pe.AcceptanceRate = float64(pe.Accepted) / float64(pe.Iters)
	}
	s.mu.Unlock()
	// Report any loss so far on this event; if this one does not fit
	// either, count it so the next delivered event carries the total.
	pe.Dropped = int(s.dropped.Load())
	select {
	case s.events <- pe:
	default: // consumer lagging: drop; Best()/Wait() carry the state
		s.dropped.Add(1)
		s.droppedC.Inc()
	}
}

// resultFor builds a full Result for a (possibly mid-run) solution. The
// input-side fields come from the precomputed base, so the cost of a call
// is proportional to the output circuit only — Best may be polled hot.
func (s *Session) resultFor(out *Circuit, errBound float64, iters, accepted, migrations int, elapsed time.Duration) *Result {
	r := s.base
	r.After = out.Len()
	r.TwoQubitAfter = out.TwoQubitCount()
	r.TCountAfter = out.TCount()
	r.DepthAfter = out.Depth()
	r.FidelityAfter = s.model.CircuitFidelity(out)
	r.Error = errBound
	r.Iters = iters
	r.Accepted = accepted
	r.Migrations = migrations
	r.Elapsed = elapsed
	return &r
}

// Best returns an anytime snapshot: the best circuit found so far with a
// Result computed against it, valid and ε-bounded at any moment — before
// the first improvement it is the input itself with zero error. Safe to
// call concurrently with the running search; the returned circuit is a
// snapshot that the optimizer will never mutate (treat it as read-only).
// Once the session has finished, Best returns exactly what Wait returns.
func (s *Session) Best() (*Circuit, *Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finalRes != nil {
		return s.finalC, s.finalRes
	}
	var iters, accepted, migrations int
	for _, w := range s.workers {
		iters += w.Iters
		accepted += w.Accepted
		migrations += w.Migrations
	}
	return s.best, s.resultFor(s.best, s.bestErr, iters, accepted, migrations, time.Since(s.start))
}

// Wait blocks until the session finishes (context cancelled, deadline or
// Budget expired, Stop called, or MaxIters exhausted) and returns the
// final circuit with its statistics. Cancellation is a normal anytime
// outcome, not a failure: a cancelled session still returns a valid,
// never-worse, ε-bounded circuit and a nil error. Wait may be called any
// number of times from any goroutine.
func (s *Session) Wait() (*Circuit, *Result, error) {
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.finalC, s.finalRes, nil
}

// Stop cancels the session and waits for the final best-so-far: shorthand
// for cancelling the context passed to Start followed by Wait.
func (s *Session) Stop() (*Circuit, *Result, error) {
	s.cancel()
	return s.Wait()
}

// Events returns the session's progress stream. The channel is closed when
// the session finishes, so ranging over it terminates; a consumer that
// falls behind loses intermediate records (never the final state, which
// Wait carries). Multiple readers share one stream.
func (s *Session) Events() <-chan ProgressEvent {
	return s.events
}

// Done returns a channel closed when the session has finished; select on
// it to multiplex a session with other work without blocking in Wait.
func (s *Session) Done() <-chan struct{} {
	return s.done
}

// Metrics returns a point-in-time snapshot of the session's metric series
// as flat "name" or `name{label="value"}` keys — iterations, per-rule
// accepts and rejects, engine cache hits and misses, resynthesis queue
// depth, dropped progress events, and the rest. Histograms appear as their
// _sum and _count series. Safe to call at any moment, including after the
// session finished; when Options.Metrics supplied a shared registry the
// snapshot covers everything reported into it.
func (s *Session) Metrics() map[string]float64 {
	return s.reg.Snapshot()
}

// publicRules converts the internal attribution map into the public,
// deterministically ordered table: accepts descending, ties by name.
func publicRules(src map[string]*opt.RuleStats) []RuleStat {
	if len(src) == 0 {
		return nil
	}
	out := make([]RuleStat, 0, len(src))
	for name, st := range src {
		out = append(out, RuleStat{Name: name, Attempts: st.Attempts, Accepted: st.Accepted, Rejected: st.Rejected})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Accepted != out[j].Accepted {
			return out[i].Accepted > out[j].Accepted
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Resume continues optimization from a previous run's output — a stopped
// session's Wait/Best result, or Optimize's. GUOQ's entire search state is
// the circuit plus its accumulated error bound, which is what makes
// stop/resume cheap: Resume starts a fresh session on out with o.Epsilon
// reduced by the error res already spent, so the bound composed across
// both runs still respects the original budget (Thm 4.2). A res whose
// budget is fully spent resumes as an (effectively) exact-only search. A
// nil res resumes with the full budget — equivalent to Start.
func Resume(ctx context.Context, out *Circuit, res *Result, o Options) (*Session, error) {
	if res != nil && res.Error > 0 {
		if o.Epsilon == 0 {
			o.Epsilon = 1e-8 // mirror Start's default before subtracting
		}
		o.Epsilon -= res.Error
		if o.Epsilon <= 0 {
			// Fully spent: keep a vanishing budget rather than 0, which
			// Start would re-default; admission then only ever lets
			// through (near-)exact resyntheses.
			o.Epsilon = math.SmallestNonzeroFloat64
		}
	}
	return Start(ctx, out, o)
}
