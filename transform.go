package guoq

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/opt"
	"github.com/guoq-dev/guoq/internal/rewrite"
	"github.com/guoq-dev/guoq/internal/synth"
)

// ErrNoSolution is what a Synthesizer returns when it has no proposal for
// a subcircuit within the requested tolerance; the search keeps the
// original subcircuit and moves on.
var ErrNoSolution = synth.ErrNoSolution

// Transformation is one entry of the search's portfolio — the paper's τ_ε
// abstraction (Def. 4.1) as a public extension point. GUOQ is
// transformation-agnostic: fast rewrite rules and slow resynthesis are
// just entries the randomized search samples from, and callers add their
// own through Options.Transformations (per run) or RegisterTransformation
// (process-wide).
//
// The interface is closed: values are built with NewRule (fast, exact,
// ε = 0) or UseSynthesizer (slow, consumes ε from the run's budget). This
// keeps the search-loop contract — deterministic rng consumption, sound ε
// accounting, engine-safe mutation — inside the library, where it is
// enforced rather than documented.
type Transformation interface {
	// Name identifies the transformation in logs and events.
	Name() string
	// compile lowers the transformation for a concrete target set and
	// global budget; unexported to seal the interface.
	compile(gs *gateset.GateSet, epsF float64) (opt.Transformation, error)
}

// ---------------------------------------------------------------------------
// Symbolic angle parameters for rule patterns.

// Rule parameters are plain float64s, so symbolic angle variables are
// smuggled through NaN payloads: Angle(i) returns a quiet NaN encoding
// variable i, recognized by NewRule and invalid anywhere else (feeding one
// to a simulator or optimizer yields NaN, loudly).
const (
	angleMagic = uint64(0x7FF86A0E) << 32 // quiet NaN + marker in the payload

	angleOpVar = 0
	angleOpNeg = 1
	angleOpSum = 2

	angleVarMax = 1 << 14
)

func encodeAngle(op, i, j int) float64 {
	if i < 0 || i >= angleVarMax || j < 0 || j >= angleVarMax {
		panic(fmt.Sprintf("guoq: angle variable index out of range [0, %d)", angleVarMax))
	}
	return math.Float64frombits(angleMagic | uint64(op)<<28 | uint64(j)<<14 | uint64(i))
}

func decodeAngle(v float64) (op, i, j int, ok bool) {
	bits := math.Float64bits(v)
	if bits&0xFFFFFFFF_00000000 != angleMagic {
		return 0, 0, 0, false
	}
	low := uint32(bits)
	return int(low >> 28), int(low & (angleVarMax - 1)), int(low >> 14 & (angleVarMax - 1)), true
}

// Angle returns the symbolic angle variable θᵢ for use in NewRule patterns
// and replacements: in a pattern it matches any angle and binds it; in a
// replacement it evaluates to the bound value.
func Angle(i int) float64 { return encodeAngle(angleOpVar, i, 0) }

// AngleNeg returns −θᵢ, valid in rule replacements only.
func AngleNeg(i int) float64 { return encodeAngle(angleOpNeg, i, 0) }

// AngleSum returns θᵢ + θⱼ, valid in rule replacements only (the merge
// rule Rz(θ₀)·Rz(θ₁) → Rz(θ₀+θ₁) is AngleSum(0, 1)).
func AngleSum(i, j int) float64 { return encodeAngle(angleOpSum, i, j) }

// ---------------------------------------------------------------------------
// Rule: the fast (exact) extension point.

// Rule is a fast, exact rewrite transformation: a pattern subcircuit and
// an equivalent replacement, both expressed with the ordinary gate
// constructors over pattern-local qubits (0..numQubits-1) and symbolic
// angles (Angle). Build one with NewRule, which machine-verifies the
// equivalence before accepting it.
type Rule struct {
	name     string
	compiled *rewrite.Rule
}

// NewRule builds and verifies a rewrite rule. Pattern and replacement are
// gate sequences in execution order over pattern-local qubit indices;
// angle parameters may be concrete values (matched within tolerance) or
// symbolic variables from Angle (replacements may also use AngleNeg and
// AngleSum). Example — "cancel CX conjugation of a Z rotation":
//
//	rule, err := guoq.NewRule("cx-rz-cx", 2,
//		[]guoq.Gate{guoq.CX(0, 1), guoq.Rz(guoq.Angle(0), 0), guoq.CX(0, 1)},
//		[]guoq.Gate{guoq.Rz(guoq.Angle(0), 0)},
//	)
//
// The rule is rejected unless pattern ≡ replacement (up to global phase)
// at randomized angle bindings, so a registered rule can never corrupt a
// run: user rules carry the same verified-exactness guarantee as the
// built-in libraries.
func NewRule(name string, numQubits int, pattern, replacement []Gate) (*Rule, error) {
	if name == "" {
		return nil, fmt.Errorf("guoq: rule needs a name")
	}
	numVars := 0
	note := func(i int) {
		if i+1 > numVars {
			numVars = i + 1
		}
	}
	pat := make([]rewrite.PatGate, len(pattern))
	for gi, g := range pattern {
		params := make([]rewrite.PatParam, len(g.Params))
		for pi, v := range g.Params {
			if op, i, _, ok := decodeAngle(v); ok {
				if op != angleOpVar {
					return nil, fmt.Errorf("guoq: rule %s: pattern gate %d: only Angle(i) is valid in patterns", name, gi)
				}
				params[pi] = rewrite.V(i)
				note(i)
			} else if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("guoq: rule %s: pattern gate %d has a non-finite angle", name, gi)
			} else {
				params[pi] = rewrite.C(v)
			}
		}
		pat[gi] = rewrite.PatGate{Name: g.Name, Qubits: append([]int(nil), g.Qubits...), Params: params}
	}
	rep := make([]rewrite.RepGate, len(replacement))
	for gi, g := range replacement {
		params := make([]rewrite.ParamExpr, len(g.Params))
		for pi, v := range g.Params {
			if op, i, j, ok := decodeAngle(v); ok {
				switch op {
				case angleOpVar:
					params[pi] = rewrite.EV(i)
					note(i)
				case angleOpNeg:
					params[pi] = rewrite.ENeg(i)
					note(i)
				case angleOpSum:
					params[pi] = rewrite.ESum(i, j)
					note(i)
					note(j)
				default:
					return nil, fmt.Errorf("guoq: rule %s: replacement gate %d has an unknown angle expression", name, gi)
				}
			} else if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("guoq: rule %s: replacement gate %d has a non-finite angle", name, gi)
			} else {
				params[pi] = rewrite.EC(v)
			}
		}
		rep[gi] = rewrite.RepGate{Name: g.Name, Qubits: append([]int(nil), g.Qubits...), Params: params}
	}
	r, err := rewrite.NewRule(name, numQubits, numVars, pat, rep)
	if err != nil {
		return nil, err
	}
	// Machine-verify pattern ≡ replacement (mod global phase) at randomized
	// bindings — the same property the test suite pins for the built-in
	// libraries, enforced here at construction for user rules.
	rng := rand.New(rand.NewSource(0x5eed1e))
	trials := 4
	if numVars == 0 {
		trials = 1
	}
	for trial := 0; trial < trials; trial++ {
		binding := make([]float64, numVars)
		for i := range binding {
			binding[i] = rng.Float64()*2*math.Pi - math.Pi
		}
		if d := r.Verify(binding); !(d <= 1e-9) {
			return nil, fmt.Errorf("guoq: rule %s is not an equivalence: pattern and replacement differ by %g at binding %v", name, d, binding)
		}
	}
	return &Rule{name: name, compiled: r}, nil
}

// MustNewRule is NewRule for statically known rules; it panics on error.
func MustNewRule(name string, numQubits int, pattern, replacement []Gate) *Rule {
	r, err := NewRule(name, numQubits, pattern, replacement)
	if err != nil {
		panic(err)
	}
	return r
}

// Name implements Transformation.
func (r *Rule) Name() string { return "rule:" + r.name }

func (r *Rule) compile(gs *gateset.GateSet, _ float64) (opt.Transformation, error) {
	// The pattern can only match native circuits, but the replacement is
	// spliced in verbatim — it must not push the search out of the target.
	for _, g := range r.compiled.Replacement {
		if !gs.Contains(g.Name) {
			return nil, fmt.Errorf("guoq: rule %s: replacement gate %s is not native to gate set %s", r.name, g.Name, gs.Name)
		}
	}
	return &opt.RuleTransformation{Rule: r.compiled}, nil
}

// ---------------------------------------------------------------------------
// Synthesizer: the slow (ε-consuming) extension point.

// Synthesizer is the slow transformation class (§4.1) as a public
// extension point: a numerical or search-based procedure that proposes a
// replacement for a small subcircuit, consuming approximation budget. Wrap
// one with UseSynthesizer to add it to a run's portfolio — external
// synthesis engines (BQSKit/QFAST-style numerics, Synthetiq-style finite
// search) plug in here.
//
// Synthesize receives an extracted subcircuit (2–3 qubits) and the error
// allowance for this application; it returns a replacement circuit, the ε
// it consumed, or ErrNoSolution (any error means "no proposal"). The
// framework re-verifies every proposal before splicing: the replacement
// must stay on the subcircuit's qubit count, must be native to the run's
// target set, and the independently measured Hilbert–Schmidt error — not
// the synthesizer's claim — must fit the allowance. A synthesizer that
// over-reports ε (claims more than the allowance) is rejected outright,
// and the budget is debited with the larger of claim and measurement, so
// a buggy or adversarial implementation cannot break the Thm 4.2
// guarantee; honor the contract and the consumed ε is debited from
// Options.Epsilon exactly like built-in resynthesis. Implementations must
// be safe for concurrent use (parallel modes synthesize from several
// workers) and should honor ctx cancellation promptly.
type Synthesizer interface {
	// Name identifies the synthesizer in logs.
	Name() string
	// Synthesize proposes a replacement for sub within eps.
	Synthesize(ctx context.Context, sub *Circuit, eps float64) (replacement *Circuit, consumed float64, err error)
}

// UseSynthesizer wraps a Synthesizer as a slow Transformation for
// Options.Transformations or RegisterTransformation.
func UseSynthesizer(s Synthesizer) Transformation {
	return &synthTransformation{s: s}
}

type synthTransformation struct {
	s Synthesizer
}

// Name implements Transformation.
func (t *synthTransformation) Name() string { return "synth:" + t.s.Name() }

func (t *synthTransformation) compile(gs *gateset.GateSet, epsF float64) (opt.Transformation, error) {
	if t.s == nil {
		return nil, fmt.Errorf("guoq: UseSynthesizer(nil)")
	}
	return &opt.CircuitResynthTransformation{
		Synth:       t.s,
		MaxQubits:   3,
		DeclaredEps: epsF,
		GateSet:     gs,
	}, nil
}

// ---------------------------------------------------------------------------
// Registration.

// globalTransformations holds process-wide registered transformations with
// their gate set filter.
var globalTransformations = struct {
	sync.RWMutex
	entries []struct {
		target string
		t      Transformation
	}
}{}

// RegisterTransformation adds a transformation to every future run whose
// target gate set matches: target names one gate set, "" (or "*") applies
// to all of them. Per-run alternatives go in Options.Transformations; both
// compose with — never replace — the built-in portfolio, and the default
// portfolio with no registrations is byte-identical to previous releases
// (seeded runs reproduce exactly).
func RegisterTransformation(target string, t Transformation) error {
	if t == nil {
		return fmt.Errorf("guoq: RegisterTransformation(nil)")
	}
	if target == "*" {
		target = ""
	}
	globalTransformations.Lock()
	globalTransformations.entries = append(globalTransformations.entries, struct {
		target string
		t      Transformation
	}{target, t})
	globalTransformations.Unlock()
	return nil
}

// compileExtensions builds the opt-layer transformations extending the
// default portfolio for one run: globally registered entries matching the
// gate set (registration order), then the per-run Options.Transformations.
func compileExtensions(gs *gateset.GateSet, epsF float64, perRun []Transformation) ([]opt.Transformation, error) {
	var out []opt.Transformation
	globalTransformations.RLock()
	entries := append([]struct {
		target string
		t      Transformation
	}(nil), globalTransformations.entries...)
	globalTransformations.RUnlock()
	for _, e := range entries {
		if e.target != "" && e.target != gs.Name {
			continue
		}
		ct, err := e.t.compile(gs, epsF)
		if err != nil {
			return nil, err
		}
		out = append(out, ct)
	}
	for _, t := range perRun {
		if t == nil {
			return nil, fmt.Errorf("guoq: Options.Transformations contains a nil entry")
		}
		ct, err := t.compile(gs, epsF)
		if err != nil {
			return nil, err
		}
		out = append(out, ct)
	}
	return out, nil
}
