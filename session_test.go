package guoq

import (
	"context"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/guoq-dev/guoq/internal/circuit"
	"github.com/guoq-dev/guoq/internal/gateset"
	"github.com/guoq-dev/guoq/internal/linalg"
)

// nativeRandom builds a random circuit already native to the nam gate set.
func nativeRandom(t *testing.T, seed int64, gates int) *Circuit {
	t.Helper()
	return circuit.Random(4, gates, gateset.Nam.Gates, rand.New(rand.NewSource(seed)))
}

// Optimize is documented as a thin wrapper over Start+Wait: a seeded
// synchronous iteration-bounded run must be bit-for-bit identical through
// either entry point.
func TestOptimizeMatchesStartWait(t *testing.T) {
	c := nativeRandom(t, 3, 40)
	o := Options{
		GateSet:  "nam",
		Seed:     42,
		MaxIters: 300,
		Budget:   10 * time.Minute, // generous: MaxIters is the bound that fires
	}
	viaOptimize, resA, err := Optimize(c, o)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := Start(context.Background(), c, o)
	if err != nil {
		t.Fatal(err)
	}
	viaSession, resB, err := sess.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if a, b := viaOptimize.WriteQASM(), viaSession.WriteQASM(); a != b {
		t.Fatalf("Optimize and Start/Wait diverged for equal seeds:\n%s\nvs\n%s", a, b)
	}
	if resA.After != resB.After || resA.Error != resB.Error ||
		resA.Iters != resB.Iters || resA.Accepted != resB.Accepted {
		t.Fatalf("result statistics diverged: %+v vs %+v", resA, resB)
	}
}

// The acceptance property of the anytime contract: cancelling a session
// mid-run yields a valid, ε-bounded circuit strictly no worse than the
// input, with accurate statistics.
func TestSessionCancelReturnsBestSoFar(t *testing.T) {
	c := nativeRandom(t, 7, 60)
	orig := c.Unitary()
	ctx, cancel := context.WithCancel(context.Background())
	sess, err := Start(ctx, c, Options{
		GateSet:     "nam",
		Budget:      0, // no deadline: cancellation is the only way out
		Seed:        1,
		Async:       true,
		Parallelism: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	cancel()
	out, res, err := sess.Wait()
	if err != nil {
		t.Fatalf("cancellation must not be an error, got %v", err)
	}
	if out == nil || res == nil {
		t.Fatal("cancelled session returned no result")
	}
	if res.TwoQubitAfter > res.TwoQubitBefore {
		t.Fatalf("cancelled run returned a worse circuit: 2q %d -> %d",
			res.TwoQubitBefore, res.TwoQubitAfter)
	}
	if res.Error > 1e-8 {
		t.Fatalf("accumulated error %g exceeds the ε budget", res.Error)
	}
	if !linalg.EqualUpToPhase(out.Unitary(), orig, 1e-8+1e-9) {
		t.Fatal("cancelled run broke ε-equivalence")
	}
	if res.Iters == 0 || res.Elapsed == 0 {
		t.Fatalf("cancelled run lost its statistics: %+v", res)
	}
	// Best after completion must agree with Wait.
	bc, br := sess.Best()
	if bc.WriteQASM() != out.WriteQASM() || br.After != res.After {
		t.Fatal("Best() after completion disagrees with Wait()")
	}
}

// Best must be safe to call concurrently with an active portfolio session
// (run under -race in CI) and every snapshot must already be valid:
// never worse than the input, with a bounded error.
func TestSessionBestConcurrent(t *testing.T) {
	c := nativeRandom(t, 9, 50)
	before := c.TwoQubitCount()
	sess, err := Start(context.Background(), c, Options{
		GateSet:     "nam",
		Budget:      300 * time.Millisecond,
		Seed:        2,
		Async:       true,
		Parallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-sess.Done():
					return
				default:
				}
				snap, res := sess.Best()
				if snap == nil || res == nil {
					t.Error("Best() returned nil mid-run")
					return
				}
				if snap.TwoQubitCount() > before {
					t.Errorf("mid-run snapshot worse than input: %d > %d",
						snap.TwoQubitCount(), before)
					return
				}
				if res.Error > 1e-8 {
					t.Errorf("mid-run snapshot error %g exceeds budget", res.Error)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	out, res, err := sess.Wait()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if out.TwoQubitCount() > before {
		t.Fatalf("final circuit worse than input: %d -> %d", before, out.TwoQubitCount())
	}
	if res.Iters == 0 {
		t.Fatal("session did no work")
	}
}

// Cancelling mid-portfolio must wind down every worker goroutine — the
// session may not leak searchers, async resynthesis workers, or the
// monitoring goroutine.
func TestSessionCancelNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	for trial := 0; trial < 3; trial++ {
		c := nativeRandom(t, int64(20+trial), 50)
		ctx, cancel := context.WithCancel(context.Background())
		sess, err := Start(ctx, c, Options{
			GateSet:     "nam",
			Budget:      0,
			Seed:        int64(trial),
			Async:       true,
			Parallelism: 4,
		})
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		time.Sleep(60 * time.Millisecond)
		cancel()
		if _, _, err := sess.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	// Async synthesis calls drain on their own schedule (bounded by the
	// synthesizer's per-call time limit); poll instead of one fixed sleep.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after cancelled sessions: %d -> %d\n%s",
				base, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// The Events stream reports monotone best costs on improvement events and
// closes when the session ends.
func TestSessionEvents(t *testing.T) {
	c := NewCircuit(3)
	c.Append(H(0), H(0), CX(0, 1), CX(0, 1), CX(1, 2), T(2), Tdg(2), CX(1, 2))
	native, err := Translate(c, "nam")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := Start(context.Background(), native, Options{
		GateSet: "nam",
		Budget:  250 * time.Millisecond,
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	events, lastImproved := 0, -1.0
	for ev := range sess.Events() {
		events++
		if ev.Improved {
			if lastImproved >= 0 && ev.BestCost >= lastImproved {
				t.Fatalf("improvement event did not improve: %g then %g", lastImproved, ev.BestCost)
			}
			lastImproved = ev.BestCost
		}
		if ev.Rejected != ev.Iters-ev.Accepted {
			t.Fatalf("inconsistent counters: %+v", ev)
		}
	}
	if events == 0 {
		t.Fatal("no events observed on a redundant circuit")
	}
	if _, _, err := sess.Wait(); err != nil {
		t.Fatal(err)
	}
}

// A fixpoint session streams per-round convergence events: each round's
// Worker-0 event lands in Session.Events with consistent cumulative
// counters, and the final result is never worse than the input and within
// the ε budget.
func TestSessionFixpointEvents(t *testing.T) {
	// Big enough to actually window at the default 256-gate window size;
	// smaller circuits would silently exercise the portfolio fallback.
	c := nativeRandom(t, 37, 600)
	sess, err := Start(context.Background(), c, Options{
		GateSet:  "nam",
		Budget:   2 * time.Second,
		Seed:     7,
		Fixpoint: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	for ev := range sess.Events() {
		events++
		if ev.Rejected != ev.Iters-ev.Accepted {
			t.Fatalf("inconsistent counters: %+v", ev)
		}
	}
	if events == 0 {
		t.Fatal("no round events observed from a fixpoint session")
	}
	out, res, err := sess.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if out == nil || res.TwoQubitAfter > res.TwoQubitBefore {
		t.Fatalf("fixpoint worsened the objective: %d -> %d two-qubit gates",
			res.TwoQubitBefore, res.TwoQubitAfter)
	}
	if res.Error > 1e-8 {
		t.Fatalf("Error %g exceeds the default budget", res.Error)
	}
}

// Stop is cancel-then-Wait: it must end an unbounded session promptly and
// return the same result Wait does.
func TestSessionStop(t *testing.T) {
	c := nativeRandom(t, 31, 40)
	sess, err := Start(context.Background(), c, Options{
		GateSet: "nam",
		Budget:  0,
		Seed:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	done := make(chan struct{})
	var out *Circuit
	go func() {
		out, _, _ = sess.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not end the session")
	}
	if out == nil || out.TwoQubitCount() > c.TwoQubitCount() {
		t.Fatal("Stop returned a missing or worse circuit")
	}
}

// A session honors the ctx its caller already bounded with a deadline —
// Budget is only sugar for the same mechanism.
func TestSessionCtxDeadlineIsBudget(t *testing.T) {
	c := nativeRandom(t, 17, 40)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	sess, err := Start(ctx, c, Options{GateSet: "nam", Budget: 0, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Wait(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("ctx deadline ignored: ran %v", elapsed)
	}
}

// A custom Cost drives the search and is reported as the "custom"
// objective; the never-worse guarantee holds against it.
func TestCustomCostFunc(t *testing.T) {
	c := nativeRandom(t, 23, 40)
	depth := CostFunc(func(c *Circuit) float64 { return float64(c.Depth()) })
	out, res, err := Optimize(c, Options{
		GateSet: "nam",
		Cost:    depth,
		Budget:  150 * time.Millisecond,
		Seed:    6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != ObjectiveCustom {
		t.Fatalf("objective = %q, want %q", res.Objective, ObjectiveCustom)
	}
	if out.Depth() > c.Depth() {
		t.Fatalf("custom cost regressed: depth %d -> %d", c.Depth(), out.Depth())
	}
}

// Resume picks up where a stopped session left off, charging the second
// leg against the remaining ε budget so the composed bound still fits the
// original Epsilon (Thm 4.2 across runs).
func TestSessionResume(t *testing.T) {
	c := nativeRandom(t, 13, 60)
	orig := c.Unitary()
	const eps = 1e-8
	o := Options{GateSet: "nam", Epsilon: eps, Budget: 0, Seed: 1, Async: true}

	ctx, cancel := context.WithCancel(context.Background())
	sess, err := Start(ctx, c, o)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	cancel()
	mid, midRes, err := sess.Wait()
	if err != nil {
		t.Fatal(err)
	}

	resumed, err := Resume(context.Background(), mid, midRes, Options{
		GateSet: "nam", Epsilon: eps, Budget: 150 * time.Millisecond, Seed: 2, Async: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, res, err := resumed.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got, midGot := out.TwoQubitCount(), mid.TwoQubitCount(); got > midGot {
		t.Fatalf("resumed run regressed: 2q %d -> %d", midGot, got)
	}
	if total := midRes.Error + res.Error; total > eps {
		t.Fatalf("composed error %g exceeds the original budget %g", total, eps)
	}
	if !linalg.EqualUpToPhase(out.Unitary(), orig, eps+1e-9) {
		t.Fatal("stop/resume broke end-to-end ε-equivalence")
	}
}

func TestOptionsValidate(t *testing.T) {
	valid := Options{GateSet: "nam"}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	cases := []struct {
		name string
		o    Options
		want string
	}{
		{"missing gate set", Options{}, "GateSet"},
		{"unknown gate set", Options{GateSet: "bogus"}, "bogus"},
		{"unknown objective", Options{GateSet: "nam", Objective: "??"}, "objective"},
		{"cost and objective", Options{GateSet: "nam", Objective: MinimizeT,
			Cost: CostFunc(func(*Circuit) float64 { return 0 })}, "mutually exclusive"},
		{"negative epsilon", Options{GateSet: "nam", Epsilon: -1}, "Epsilon"},
		{"negative budget", Options{GateSet: "nam", Budget: -time.Second}, "Budget"},
		{"negative parallelism", Options{GateSet: "nam", Parallelism: -1}, "Parallelism"},
		{"negative max iters", Options{GateSet: "nam", MaxIters: -1}, "MaxIters"},
		{"partition without workers", Options{GateSet: "nam", PartitionParallel: true, Parallelism: 1}, "Parallelism ≥ 2"},
	}
	for _, tc := range cases {
		err := tc.o.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.o)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// The formerly silently-ignored combination now fails loudly through
	// Optimize and Start too.
	c := nativeRandom(t, 40, 20)
	if _, _, err := Optimize(c, Options{GateSet: "nam", PartitionParallel: true}); err == nil {
		t.Fatal("Optimize accepted PartitionParallel without Parallelism ≥ 2")
	}
	if _, err := Start(context.Background(), c, Options{GateSet: "nam", PartitionParallel: true}); err == nil {
		t.Fatal("Start accepted PartitionParallel without Parallelism ≥ 2")
	}
}
