package guoq

import (
	"math"
	"testing"
	"time"

	"github.com/guoq-dev/guoq/internal/linalg"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	c := NewCircuit(3)
	c.Append(H(0), CX(0, 1), CX(0, 1), T(2), Tdg(2), CCX(0, 1, 2))
	native, err := Translate(c, "nam")
	if err != nil {
		t.Fatal(err)
	}
	out, res, err := Optimize(native, Options{
		GateSet: "nam",
		Budget:  300 * time.Millisecond,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TwoQubitAfter > res.TwoQubitBefore {
		t.Fatalf("optimization made circuit worse: %d -> %d",
			res.TwoQubitBefore, res.TwoQubitAfter)
	}
	if !linalg.EqualUpToPhase(out.Unitary(), native.Unitary(), 1e-8+1e-9) {
		t.Fatal("public Optimize broke semantics")
	}
}

func TestOptimizeValidatesInput(t *testing.T) {
	c := NewCircuit(3)
	c.Append(CCZ(0, 1, 2)) // wide gate, not native to any evaluation set
	if _, _, err := Optimize(c, Options{GateSet: "nam"}); err == nil {
		t.Fatal("non-native input should be rejected")
	}
	if _, _, err := Optimize(c, Options{GateSet: "bogus"}); err == nil {
		t.Fatal("unknown gate set should be rejected")
	}
	n := NewCircuit(1)
	n.Append(H(0))
	if _, _, err := Optimize(n, Options{GateSet: "nam", Objective: "??"}); err == nil {
		t.Fatal("unknown objective should be rejected")
	}
}

func TestParseQASMPublic(t *testing.T) {
	c, err := ParseQASM("qreg q[2]; h q[0]; cx q[0],q[1];")
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("parsed %d gates", c.Len())
	}
}

func TestGateSetsList(t *testing.T) {
	got := GateSets()
	want := []string{"ibmq20", "ibm-eagle", "ionq", "nam", "cliffordt"}
	if len(got) < len(want) {
		t.Fatalf("GateSets() = %v", got)
	}
	// The paper's five lead the list in Table 2 order; registered custom
	// sets (other tests may have added some) follow.
	for i, name := range want {
		if got[i] != name {
			t.Fatalf("GateSets()[%d] = %q, want %q (full list %v)", i, got[i], name, got)
		}
	}
}

func TestEstimateFidelity(t *testing.T) {
	c := NewCircuit(2)
	c.Append(CX(0, 1))
	f, err := EstimateFidelity(c, "ibm-eagle")
	if err != nil || f >= 1 || f < 0.9 {
		t.Fatalf("fidelity = %g, err = %v", f, err)
	}
	empty := NewCircuit(1)
	if f, _ := EstimateFidelity(empty, "ionq"); math.Abs(f-1) > 1e-12 {
		t.Fatal("empty circuit fidelity should be 1")
	}
}

func TestOptimizeParallel(t *testing.T) {
	c := NewCircuit(3)
	c.Append(H(0), CX(0, 1), CX(0, 1), T(2), Tdg(2), CCX(0, 1, 2))
	native, err := Translate(c, "nam")
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []Options{
		{GateSet: "nam", Budget: 200 * time.Millisecond, Seed: 1, Parallelism: 4},
		{GateSet: "nam", Budget: 200 * time.Millisecond, Seed: 1, Parallelism: 4, PartitionParallel: true},
	} {
		out, res, err := Optimize(native, o)
		if err != nil {
			t.Fatal(err)
		}
		if res.TwoQubitAfter > res.TwoQubitBefore {
			t.Fatalf("parallel optimization made circuit worse: %d -> %d",
				res.TwoQubitBefore, res.TwoQubitAfter)
		}
		if !linalg.EqualUpToPhase(out.Unitary(), native.Unitary(), 1e-8+1e-9) {
			t.Fatal("parallel Optimize broke semantics")
		}
	}
}

func TestObjectiveDefaults(t *testing.T) {
	c := NewCircuit(1)
	c.Append(T(0), Tdg(0))
	out, res, err := Optimize(c, Options{GateSet: "cliffordt", Budget: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != MinimizeT {
		t.Fatalf("cliffordt default objective = %s", res.Objective)
	}
	if out.Len() != 0 {
		t.Fatalf("t·tdg should cancel, %d gates left", out.Len())
	}
}
