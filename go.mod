module github.com/guoq-dev/guoq

go 1.22
