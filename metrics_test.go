package guoq

import (
	"context"
	"time"

	"testing"

	"github.com/guoq-dev/guoq/internal/opt"
)

// Event loss is never silent: when the consumer lags, the drop is counted
// and the next delivered event reports the cumulative total. White-box —
// the session is built by hand with a tiny buffer so the drop path is
// exercised deterministically instead of racing a real search.
func TestProgressEventDroppedAccounting(t *testing.T) {
	s := &Session{
		cost:    func(c *Circuit) float64 { return 0 },
		start:   time.Now(),
		events:  make(chan ProgressEvent, 1),
		workers: map[int]opt.Event{},
		resynth: map[int]int{},
	}

	// First event fills the buffer; the next four overflow and must be
	// counted, not lost silently.
	for i := 0; i < 5; i++ {
		s.onEvent(opt.Event{Worker: 0, Iters: i + 1})
	}
	first := <-s.events
	if first.Dropped != 0 {
		t.Fatalf("first delivered event reports %d drops, want 0 (they happened after it)", first.Dropped)
	}

	// The buffer has room again: the next event must get through and carry
	// the cumulative loss.
	s.onEvent(opt.Event{Worker: 0, Iters: 6})
	next := <-s.events
	if next.Dropped != 4 {
		t.Fatalf("Dropped = %d, want 4", next.Dropped)
	}

	// The counter is cumulative, never reset by a successful delivery.
	s.onEvent(opt.Event{Worker: 0, Iters: 7}) // delivered (buffer empty)
	s.onEvent(opt.Event{Worker: 0, Iters: 8}) // dropped (buffer full)
	if got := (<-s.events).Dropped; got != 4 {
		t.Fatalf("Dropped = %d after another delivery, want still 4", got)
	}
	s.onEvent(opt.Event{Worker: 0, Iters: 9})
	if got := (<-s.events).Dropped; got != 5 {
		t.Fatalf("Dropped = %d, want 5 after one more overflow", got)
	}
}

// A real session reports its metrics: the snapshot agrees with the final
// Result (iterations, per-rule accepts summing to Accepted), and the
// attribution table is sorted, consistent, and only on the final Result.
func TestSessionMetricsAndRuleAttribution(t *testing.T) {
	c := nativeRandom(t, 51, 40)
	reg := NewMetricsRegistry()
	sess, err := Start(context.Background(), c, Options{
		GateSet:  "nam",
		Seed:     8,
		MaxIters: 400,
		Budget:   10 * time.Minute, // MaxIters fires first
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := sess.Wait()
	if err != nil {
		t.Fatal(err)
	}

	snap := sess.Metrics()
	if got := snap["guoq_iterations_total"]; got != float64(res.Iters) {
		t.Fatalf("guoq_iterations_total = %g, want %d", got, res.Iters)
	}
	if snap["guoq_engine_cache_hits_total"]+snap["guoq_engine_cache_misses_total"] == 0 {
		t.Fatal("engine cache counters never moved")
	}

	if len(res.Rules) == 0 {
		t.Fatal("final Result carries no attribution table")
	}
	sumAccepted, sumAttempts := 0, 0
	for i, r := range res.Rules {
		sumAccepted += r.Accepted
		sumAttempts += r.Attempts
		if r.Accepted+r.Rejected > r.Attempts {
			t.Fatalf("rule %q: accepted %d + rejected %d exceed attempts %d",
				r.Name, r.Accepted, r.Rejected, r.Attempts)
		}
		if i > 0 && res.Rules[i-1].Accepted < r.Accepted {
			t.Fatalf("Rules not sorted by accepts: %q (%d) after %q (%d)",
				r.Name, r.Accepted, res.Rules[i-1].Name, res.Rules[i-1].Accepted)
		}
	}
	if sumAccepted != res.Accepted {
		t.Fatalf("per-rule accepts sum to %d, Result.Accepted is %d", sumAccepted, res.Accepted)
	}
	if sumAttempts == 0 {
		t.Fatal("no attempts recorded across the portfolio")
	}

	// The shared registry mirrors the attribution.
	var snapAccepts float64
	for k, v := range reg.Snapshot() {
		if len(k) > len("guoq_accepts_total{") && k[:len("guoq_accepts_total{")] == "guoq_accepts_total{" {
			snapAccepts += v
		}
	}
	if snapAccepts != float64(res.Accepted) {
		t.Fatalf("registry accepts sum to %g, want %d", snapAccepts, res.Accepted)
	}
}

// Instrumentation must not perturb the search: a seeded synchronous run
// with a registry is bit-identical to one without (metrics consume no
// randomness), and a session without Options.Metrics still answers
// Metrics() from its private registry.
func TestMetricsDoNotPerturbSearch(t *testing.T) {
	c := nativeRandom(t, 52, 40)
	o := Options{GateSet: "nam", Seed: 9, MaxIters: 300, Budget: 10 * time.Minute}
	plain, resA, err := Optimize(c, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Metrics = NewMetricsRegistry()
	instrumented, resB, err := Optimize(c, o)
	if err != nil {
		t.Fatal(err)
	}
	if plain.WriteQASM() != instrumented.WriteQASM() {
		t.Fatal("instrumented run diverged from the uninstrumented one for equal seeds")
	}
	if resA.Iters != resB.Iters || resA.Accepted != resB.Accepted {
		t.Fatalf("statistics diverged: %d/%d vs %d/%d", resA.Iters, resA.Accepted, resB.Iters, resB.Accepted)
	}

	sess, err := Start(context.Background(), c, Options{GateSet: "nam", Seed: 9, MaxIters: 50})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Wait(); err != nil {
		t.Fatal(err)
	}
	if snap := sess.Metrics(); snap["guoq_iterations_total"] == 0 {
		t.Fatal("private registry (nil Options.Metrics) recorded nothing")
	}
}
