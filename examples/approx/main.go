// Approximation trade-off: the same circuit optimized under increasingly
// loose global error budgets ε_f. Looser budgets let resynthesis drop
// near-identity interactions entirely (§2.2, Table 1) — the capability
// rewrite rules fundamentally lack.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/guoq-dev/guoq"
)

func main() {
	// A QFT-like tail: controlled-phase gates with geometrically shrinking
	// angles. The small-angle CPs are nearly identity — exact optimization
	// must keep them, approximate optimization may remove them.
	n := 6
	c := guoq.NewCircuit(n)
	for i := 0; i < n; i++ {
		c.Append(guoq.H(i))
		for j := i + 1; j < n; j++ {
			c.Append(guoq.CP(3.14159265/float64(int(1)<<uint(j-i)), j, i))
		}
	}
	native, err := guoq.Translate(c, "ibmq20")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("qft-like circuit: %d gates, %d two-qubit\n\n",
		native.Len(), native.TwoQubitCount())

	for _, eps := range []float64{1e-8, 3e-2, 6e-2, 1.5e-1} {
		out, _, err := guoq.Optimize(native, guoq.Options{
			GateSet: "ibmq20",
			Epsilon: eps,
			Budget:  2 * time.Second,
			Seed:    1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ε_f = %-6g -> %3d gates, %2d two-qubit\n",
			eps, out.Len(), out.TwoQubitCount())
	}
	fmt.Println("\nLooser ε admits coarser approximations: fewer two-qubit gates survive.")
}
