// Anytime optimization with the Session API: start a long-running search,
// watch its progress stream, and stop it whenever you like — Ctrl-C (or
// the -budget deadline) returns the best circuit found so far instead of
// losing the work.
//
// Run with -budget 0 and interrupt at will:
//
//	go run ./examples/anytime -budget 0
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"time"

	"github.com/guoq-dev/guoq"
)

// buildWorkload layers redundant blocks over a random base so the search
// has both easy and hard reductions to chew on for a while.
func buildWorkload(n, layers int, seed int64) *guoq.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := guoq.NewCircuit(n)
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			c.Append(guoq.H(q), guoq.Rz(rng.Float64(), q))
		}
		for q := 0; q+1 < n; q += 2 {
			a, b := q, q+1
			c.Append(guoq.CX(a, b), guoq.CX(a, b), guoq.CX(b, a))
		}
		c.Append(guoq.CCX(rng.Intn(n-2), n-2, n-1))
	}
	return c
}

func main() {
	budget := flag.Duration("budget", 3*time.Second, "search deadline (0 = run until Ctrl-C)")
	flag.Parse()

	native, err := guoq.Translate(buildWorkload(5, 4, 11), "ibm-eagle")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input: %d gates, %d two-qubit\n", native.Len(), native.TwoQubitCount())

	// Ctrl-C cancels the context; the session resolves to its best-so-far.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sess, err := guoq.Start(ctx, native, guoq.Options{
		GateSet:     "ibm-eagle",
		Budget:      *budget, // sugar for context.WithTimeout(ctx, budget)
		Parallelism: 4,
		Async:       true,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The Events stream is a live view; Best() would work just as well
	// from a poller. Slow consumers only lose intermediate records.
	last := time.Time{}
	for ev := range sess.Events() {
		if !ev.Improved && time.Since(last) < 500*time.Millisecond {
			continue
		}
		last = time.Now()
		marker := " "
		if ev.Improved {
			marker = "*"
		}
		fmt.Printf("%s %7.2fs  %9d iters  accept %5.2f%%  best 2q-cost %.3f  ε=%.2g\n",
			marker, ev.Elapsed.Seconds(), ev.Iters, 100*ev.AcceptanceRate, ev.BestCost, ev.Error)
	}

	out, res, err := sess.Wait()
	if err != nil {
		log.Fatal(err)
	}
	if ctx.Err() != nil {
		fmt.Println("interrupted — best-so-far:")
	}
	fmt.Printf("done in %v: %d -> %d gates, %d -> %d two-qubit, depth %d (%d iters, ε=%.2g)\n",
		res.Elapsed.Round(time.Millisecond), res.Before, res.After,
		res.TwoQubitBefore, res.TwoQubitAfter, out.Depth(), res.Iters, res.Error)
}
