// FTQC workflow (the paper's Q4): optimize a Toffoli-heavy adder circuit
// over the fault-tolerant Clifford+T gate set, where T gates dominate the
// error-correction cost and CX congestion is the secondary concern.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/guoq-dev/guoq"
)

// buildAdder constructs a CDKM ripple-carry adder with the public API: MAJ
// and UMA blocks of cx + ccx.
func buildAdder(n int) *guoq.Circuit {
	c := guoq.NewCircuit(2*n + 1)
	a := func(i int) int { return 1 + i }
	b := func(i int) int { return 1 + n + i }
	maj := func(x, y, z int) {
		c.Append(guoq.CX(z, y), guoq.CX(z, x), guoq.CCX(x, y, z))
	}
	uma := func(x, y, z int) {
		c.Append(guoq.CCX(x, y, z), guoq.CX(z, x), guoq.CX(x, y))
	}
	maj(0, b(0), a(0))
	for i := 1; i < n; i++ {
		maj(a(i-1), b(i), a(i))
	}
	for i := n - 1; i >= 1; i-- {
		uma(a(i-1), b(i), a(i))
	}
	uma(0, b(0), a(0))
	return c
}

func main() {
	adder := buildAdder(6)
	native, err := guoq.Translate(adder, "cliffordt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adder_6 over Clifford+T: %d gates, %d T, %d CX\n",
		native.Len(), native.TCount(), native.TwoQubitCount())

	out, res, err := guoq.Optimize(native, guoq.Options{
		GateSet:   "cliffordt",
		Objective: guoq.MinimizeT, // 2·T + CX, Example 5.1
		Budget:    3 * time.Second,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized:               %d gates, %d T, %d CX (in %v)\n",
		out.Len(), out.TCount(), out.TwoQubitCount(),
		res.Elapsed.Round(time.Millisecond))
	fmt.Printf("T reduction:  %.0f%%\n",
		100*(1-float64(res.TCountAfter)/float64(res.TCountBefore)))
	fmt.Printf("CX reduction: %.0f%%\n",
		100*(1-float64(res.TwoQubitAfter)/float64(res.TwoQubitBefore)))
}
