// Customtarget: extend GUOQ through the public API — define a gate set the
// paper never evaluated (a CZ-entangler superconducting basis), add a
// custom rewrite rule and a custom synthesizer to the portfolio, and run
// the same anytime search on all of it.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/guoq-dev/guoq"
)

// greedyPruner is a minimal external "synthesizer": it greedily deletes
// gates from the subcircuit as long as the accumulated unitary distance
// stays within the ε allowance — a POPQC-style approximate local pass.
// Real integrations (BQSKit/QFAST-style numerics, Synthetiq-style search)
// implement the same three-line contract.
type greedyPruner struct{}

func (greedyPruner) Name() string { return "greedy-pruner" }

func (greedyPruner) Synthesize(_ context.Context, sub *guoq.Circuit, eps float64) (*guoq.Circuit, float64, error) {
	kept := append([]guoq.Gate(nil), sub.Gates...)
	asCircuit := func(gs []guoq.Gate) *guoq.Circuit {
		c := guoq.NewCircuit(sub.NumQubits)
		c.Gates = gs
		return c
	}
	pruned := false
	for i := 0; i < len(kept); {
		trial := append(append([]guoq.Gate(nil), kept[:i]...), kept[i+1:]...)
		if guoq.Distance(sub, asCircuit(trial)) <= eps {
			kept, pruned = trial, true
		} else {
			i++
		}
	}
	if !pruned {
		return nil, 0, guoq.ErrNoSolution
	}
	out := asCircuit(kept)
	// Report the ε actually consumed; the framework re-measures it anyway
	// (an over- or under-reporting synthesizer is rejected).
	return out, guoq.Distance(sub, out), nil
}

func main() {
	// 1. A target gate set beyond the paper's five: CZ entangler, Eagle-style
	// single-qubit basis, custom calibration weights.
	czSet := &guoq.GateSet{
		Name:          "cz-superconducting",
		Architecture:  "superconducting",
		Basis:         []string{"rz", "sx", "x", "cz"},
		OneQubitError: 2.5e-4,
		TwoQubitError: 6e-3,
	}
	if err := guoq.RegisterGateSet(czSet); err != nil {
		log.Fatal(err)
	}

	// 2. A custom rewrite rule, machine-verified at construction: sx·sx = x
	// (up to global phase). Rules with symbolic angles use guoq.Angle.
	sxsx := guoq.MustNewRule("sxsx-to-x", 1,
		[]guoq.Gate{guoq.SX(0), guoq.SX(0)},
		[]guoq.Gate{guoq.X(0)})

	// A circuit with redundancy for both extensions: ccx/swap expand into
	// cz-conjugated blocks for the exact passes, while the nearly-identity
	// entanglers (rzz/cp at tiny angles) leave two-qubit structure that
	// only approximate removal — paid for from the ε budget — can delete.
	c := guoq.NewCircuit(3)
	c.Append(
		guoq.H(0), guoq.CX(0, 1), guoq.Rzz(8e-4, 0, 2), guoq.CX(0, 2),
		guoq.CP(-6e-4, 1, 2), guoq.CX(0, 1),
		guoq.CCX(0, 1, 2), guoq.Swap(1, 2),
	)
	native, err := guoq.Translate(c, "cz-superconducting")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("translated: %d gates, %d two-qubit (all cz)\n",
		native.Len(), native.TwoQubitCount())

	// 3. One search over the extended portfolio: built-in cleanup/fusion/
	// numeric resynthesis for the custom set, plus the user rule and the
	// user synthesizer, under the usual ε accounting.
	out, res, err := guoq.Optimize(native, guoq.Options{
		Target:  czSet,
		Epsilon: 1e-3,
		Budget:  2 * time.Second,
		Seed:    1,
		Transformations: []guoq.Transformation{
			sxsx,
			guoq.UseSynthesizer(greedyPruner{}),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized:  %d gates, %d two-qubit (in %v)\n",
		out.Len(), out.TwoQubitCount(), res.Elapsed.Round(time.Millisecond))
	fmt.Printf("fidelity:   %.4f -> %.4f (custom calibration)\n",
		res.FidelityBefore, res.FidelityAfter)
	fmt.Printf("ε spent:    %.3g of %.3g budget (0 = every applied transformation was exact)\n",
		res.Error, 1e-3)
}
