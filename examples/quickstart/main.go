// Quickstart: build a small circuit, translate it to a hardware gate set,
// optimize it, and inspect the result.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/guoq-dev/guoq"
)

func main() {
	// A 3-qubit circuit with obvious and non-obvious redundancy: a GHZ
	// preparation followed by a do-undo block and a Toffoli.
	c := guoq.NewCircuit(3)
	c.Append(
		guoq.H(0), guoq.CX(0, 1), guoq.CX(1, 2), // GHZ prep
		guoq.T(2), guoq.Tdg(2), // cancels
		guoq.CX(0, 1), guoq.CX(0, 1), // cancels
		guoq.CCX(0, 1, 2), // expands to 6 CX when translated
	)

	// Decompose into the IBM Eagle native set {rz, sx, x, cx}.
	native, err := guoq.Translate(c, "ibm-eagle")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("translated: %d gates, %d two-qubit\n",
		native.Len(), native.TwoQubitCount())

	out, res, err := guoq.Optimize(native, guoq.Options{
		GateSet: "ibm-eagle",
		Budget:  2 * time.Second,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("optimized:  %d gates, %d two-qubit (in %v)\n",
		out.Len(), out.TwoQubitCount(), res.Elapsed.Round(time.Millisecond))
	fmt.Printf("fidelity:   %.4f -> %.4f\n", res.FidelityBefore, res.FidelityAfter)
	fmt.Println("\nOptimized QASM:")
	fmt.Print(out.WriteQASM())
}
