// NISQ workflow: optimize a QAOA MaxCut circuit — the workload class the
// paper's introduction motivates — for a superconducting device, comparing
// two-qubit counts and estimated fidelity before and after.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"github.com/guoq-dev/guoq"
)

// buildQAOA constructs a p-round QAOA circuit for MaxCut on a random
// 3-regular-ish graph using the public gate constructors.
func buildQAOA(n, p int, seed int64) *guoq.Circuit {
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int
	deg := make([]int, n)
	for attempts := 0; attempts < 40*n; attempts++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b || deg[a] >= 3 || deg[b] >= 3 {
			continue
		}
		edges = append(edges, [2]int{a, b})
		deg[a]++
		deg[b]++
	}
	c := guoq.NewCircuit(n)
	for q := 0; q < n; q++ {
		c.Append(guoq.H(q))
	}
	for round := 0; round < p; round++ {
		gamma := rng.Float64() * math.Pi
		beta := rng.Float64() * math.Pi
		for _, e := range edges {
			c.Append(guoq.Rzz(gamma, e[0], e[1]))
		}
		for q := 0; q < n; q++ {
			c.Append(guoq.Rx(2*beta, q))
		}
	}
	return c
}

// buildQFT constructs the quantum Fourier transform, whose controlled-phase
// ladder is highly compressible — the opposite regime from QAOA, whose
// single layer is already two-qubit optimal.
func buildQFT(n int) *guoq.Circuit {
	c := guoq.NewCircuit(n)
	for i := 0; i < n; i++ {
		c.Append(guoq.H(i))
		for j := i + 1; j < n; j++ {
			c.Append(guoq.CP(math.Pi/math.Pow(2, float64(j-i)), j, i))
		}
	}
	return c
}

func main() {
	workloads := []struct {
		name string
		c    *guoq.Circuit
	}{
		{"qaoa_10", buildQAOA(10, 1, 7)},
		{"qft_8", buildQFT(8)},
	}
	for _, w := range workloads {
		fmt.Printf("-- %s --\n", w.name)
		run(w.c)
	}
}

func run(src *guoq.Circuit) {
	for _, gateSet := range []string{"ibm-eagle", "ionq"} {
		native, err := guoq.Translate(src, gateSet)
		if err != nil {
			log.Fatal(err)
		}
		out, res, err := guoq.Optimize(native, guoq.Options{
			GateSet:   gateSet,
			Objective: guoq.MaximizeFidelity,
			Budget:    4 * time.Second,
			Seed:      1,
		})
		if err != nil {
			log.Fatal(err)
		}
		red := 1 - float64(out.TwoQubitCount())/float64(native.TwoQubitCount())
		fmt.Printf("%-10s 2q gates %4d -> %4d (%.0f%% reduction), fidelity %.4f -> %.4f\n",
			gateSet, res.TwoQubitBefore, res.TwoQubitAfter, 100*red,
			res.FidelityBefore, res.FidelityAfter)
	}
}
