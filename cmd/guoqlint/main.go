// Command guoqlint runs the repo's two static-analysis layers.
//
// Usage:
//
//	guoqlint [dir ...]        lint Go sources under each dir (default .)
//	guoqlint -rules [-seed N] check rule libraries and gate sets instead
//
// Without -rules, guoqlint walks the given directories (a trailing /...
// is accepted and ignored — walking is always recursive) and applies the
// internal/analysis/golint analyzers: hotpath allocation hygiene for
// functions marked //guoq:hotpath, context threading, and mutex-guard
// discipline for fields documented `guarded by mu`. One line per
// diagnostic goes to stdout; any diagnostic makes the exit status 1.
// Suppress a deliberate violation with a
// //guoqlint:ignore <analyzer> <reason> comment on or above the line.
//
// With -rules, guoqlint instead audits the domain artifacts: every
// registered rewrite-rule library and gate set is checked for metadata
// soundness (declared halo depths and wire extents against independent
// recomputation plus randomized probe circuits), unitary equivalence,
// replacement nativeness, duplicate/subsumed rules, and error-model
// sanity. Findings print one per line; Warning or Error findings make
// the exit status 1 (Info findings are reported but don't fail).
//
// CI runs both modes; see .github/workflows/ci.yml.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/guoq-dev/guoq/internal/analysis"
	"github.com/guoq-dev/guoq/internal/analysis/golint"
)

func main() {
	rules := flag.Bool("rules", false, "check rule libraries and gate sets instead of Go sources")
	seed := flag.Int64("seed", 1, "probe-circuit seed for -rules")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: guoqlint [dir ...]\n       guoqlint -rules [-seed N]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *rules {
		os.Exit(runRules(*seed))
	}
	os.Exit(runLint(flag.Args()))
}

func runLint(dirs []string) int {
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	bad := false
	for _, dir := range dirs {
		// Accept go-style ./... arguments; RunDir always recurses.
		dir = strings.TrimSuffix(dir, "...")
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" {
			dir = "."
		}
		diags, err := golint.RunDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "guoqlint: %v\n", err)
			return 2
		}
		for _, d := range diags {
			fmt.Println(d)
			bad = true
		}
	}
	if bad {
		return 1
	}
	return 0
}

func runRules(seed int64) int {
	findings := analysis.CheckAll(analysis.Options{Seed: seed})
	analysis.Sort(findings)
	for _, f := range findings {
		fmt.Println(f)
	}
	if !analysis.Clean(findings) {
		return 1
	}
	return 0
}
