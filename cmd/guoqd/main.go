// Command guoqd is the distributed optimization coordinator: it serves
// best-so-far exchange sessions for guoq workers on other machines and a
// sharded work queue for guoqbench workers.
//
// Usage:
//
//	guoqd -listen :7077 [-token secret] [-lease-ttl 60s] [-max-attempts 3]
//	      [-seed-bench] [-limit 40] [-queue bench] [-grace 5s] [-quiet]
//	      [-pprof-addr :6060] [-data-dir /var/lib/guoqd] [-sync 25ms]
//	      [-checkpoint 1m] [-cache-entries 4096] [-cache-size 256]
//	      [-quota rate[:burst]]
//
// -addr is an alias for -listen and overrides it when set.
//
// With -data-dir the coordinator is durable: exchange sessions and the
// work queue are logged to a write-ahead log and periodically snapshotted
// under that directory (-checkpoint sets the snapshot interval, -sync the
// fsync batching window; -sync 0 fsyncs every append), and a restart with
// the same -data-dir replays them — sessions keep their ε budgets and
// best-so-far, leased jobs keep their leases. The directory also spills
// the content-addressed result cache (served on POST /v1/submit), so
// optimized circuits survive restarts too. -quota rate[:burst] enables a per-token (or per-client
// host, when unauthenticated) token-bucket rate limit on /v1/ endpoints;
// rejected requests get 429 with Retry-After.
//
// With -token (or the GUOQD_TOKEN environment variable) every exchange and
// queue endpoint requires "Authorization: Bearer <token>"; workers pass the
// same value via guoq/guoqbench -token. /healthz and /metrics stay open:
// the metrics endpoint serves the coordinator's registry (request counts
// and latency, queue depths, lease retries, exchange adoptions, live
// sessions, uptime) in Prometheus text format, so a stock Prometheus
// scrape config needs no credentials. -pprof-addr additionally serves
// net/http/pprof on its own listener for live profiling.
//
// SIGINT/SIGTERM shuts the daemon down gracefully: the listener stops
// accepting, in-flight requests get up to -grace to finish, and request
// contexts observe the shutdown (a second signal kills immediately).
//
// With -seed-bench the daemon seeds its work queue with the benchmark
// suite (subsampled to -limit circuits, 0 = all 247), so guoqbench
// workers started with -remote lease disjoint circuits until the suite is
// drained; without it the queue starts empty and can be filled over
// POST /v1/jobs/push. Exchange sessions are created on demand by the
// first worker that connects.
//
// Inspect a running daemon with:
//
//	curl http://localhost:7077/v1/status
//	curl http://localhost:7077/v1/queues/bench
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/guoq-dev/guoq/internal/benchmarks"
	"github.com/guoq-dev/guoq/internal/dist"
	"github.com/guoq-dev/guoq/internal/experiments"
	"github.com/guoq-dev/guoq/internal/gateset"
)

func main() {
	var (
		listen       = flag.String("listen", ":7077", "address to serve on")
		addr         = flag.String("addr", "", "alias for -listen; overrides it when set")
		pprofAddr    = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
		leaseTTL     = flag.Duration("lease-ttl", 60*time.Second, "default job lease duration (dead workers' jobs requeue after this)")
		maxAttempts  = flag.Int("max-attempts", 3, "lease attempts before a job is marked failed")
		seedBench    = flag.Bool("seed-bench", false, "seed the work queue with the benchmark suite")
		gateSet      = flag.String("gateset", "ibmq20", "gate set whose suite seeds the queue (must match the workers' -gateset)")
		limit        = flag.Int("limit", 40, "suite subsample size for -seed-bench (0 = full suite)")
		queue        = flag.String("queue", "bench", "work queue name for -seed-bench")
		grace        = flag.Duration("grace", 5*time.Second, "drain deadline for in-flight requests on shutdown")
		quiet        = flag.Bool("quiet", false, "suppress per-request logging")
		token        = flag.String("token", os.Getenv("GUOQD_TOKEN"), "shared bearer token required on /v1/ endpoints (default $GUOQD_TOKEN; empty = open; comma-separate multiple tokens)")
		dataDir      = flag.String("data-dir", "", "durable state directory: WAL + snapshots + cache spill (empty = in-memory only)")
		cacheEntries = flag.Int("cache-entries", 4096, "result-cache capacity in entries (negative = cache disabled)")
		cacheSize    = flag.Int("cache-size", 256, "result-cache capacity in MB")
		quota        = flag.String("quota", "", "per-token rate limit as rate[:burst] requests/sec (empty = unlimited)")
		syncEvery    = flag.Duration("sync", 25*time.Millisecond, "WAL fsync batching interval with -data-dir (0 = fsync every append)")
		checkpoint   = flag.Duration("checkpoint", time.Minute, "snapshot interval with -data-dir (WAL is compacted at each checkpoint)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: guoqd [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *addr != "" {
		*listen = *addr
	}

	logger := log.New(os.Stderr, "guoqd: ", log.LstdFlags)
	opts := dist.ServerOptions{
		LeaseTTL:        *leaseTTL,
		MaxAttempts:     *maxAttempts,
		Token:           *token,
		DataDir:         *dataDir,
		CacheEntries:    *cacheEntries,
		CacheBytes:      int64(*cacheSize) << 20,
		SyncEvery:       *syncEvery,
		CheckpointEvery: *checkpoint,
	}
	if *syncEvery == 0 {
		opts.SyncEvery = -1 // flag 0 means "fsync every append"
	}
	if !*quiet {
		opts.Logf = logger.Printf
	}
	if *quota != "" {
		rate, burst, err := parseQuota(*quota)
		if err != nil {
			logger.Fatal(err)
		}
		opts.QuotaRate, opts.QuotaBurst = rate, burst
	}
	srv, err := dist.OpenServer(opts)
	if err != nil {
		logger.Fatal(err)
	}
	if *token != "" {
		logger.Printf("token auth enabled on /v1/ endpoints")
	}
	if *dataDir != "" {
		logger.Printf("durable state in %s", *dataDir)
	}

	if *seedBench {
		// Seed with the suite of the workers' gate set: the Clifford+T set
		// has its own suite with different circuit names, and a queue
		// seeded from the wrong one would drain as "unknown circuit"
		// reports without any real work.
		gs, err := gateset.ByName(*gateSet)
		if err != nil {
			logger.Fatal(err)
		}
		suite, err := benchmarks.SuiteFor(gs)
		if err != nil {
			logger.Fatal(err)
		}
		suite = experiments.Subsample(suite, *limit)
		jobs := make([]dist.Job, 0, len(suite))
		for _, b := range suite {
			jobs = append(jobs, dist.Job{ID: b.Name})
		}
		added := srv.Push(*queue, jobs)
		logger.Printf("seeded queue %q with %d %s benchmark circuits", *queue, added, gs.Name)
	}

	// First SIGINT/SIGTERM starts the graceful drain; restoring default
	// handling right after means a second signal kills immediately.
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()
	go func() {
		<-ctx.Done()
		stopSig()
	}()

	if *pprofAddr != "" {
		// pprof gets its own listener (default mux), never the public port:
		// profiling endpoints stay reachable only where the operator binds
		// them, regardless of -token.
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Printf("pprof: %v", err)
			}
		}()
		logger.Printf("pprof on http://%s/debug/pprof/", *pprofAddr)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("coordinator listening on %s", l.Addr())
	if err := srv.ServeContext(ctx, l, *grace); err != nil {
		logger.Fatal(err)
	}
	// Final checkpoint + WAL close, so the next boot replays a compact
	// snapshot instead of the whole log.
	if err := srv.Close(); err != nil {
		logger.Printf("close: %v", err)
	}
	logger.Printf("coordinator drained, shutting down")
}

// parseQuota parses the -quota flag: "rate" or "rate:burst".
func parseQuota(s string) (rate, burst float64, err error) {
	rs, bs, hasBurst := strings.Cut(s, ":")
	if rate, err = strconv.ParseFloat(rs, 64); err != nil || rate <= 0 {
		return 0, 0, fmt.Errorf("guoqd: bad -quota rate %q", rs)
	}
	if hasBurst {
		if burst, err = strconv.ParseFloat(bs, 64); err != nil || burst <= 0 {
			return 0, 0, fmt.Errorf("guoqd: bad -quota burst %q", bs)
		}
	}
	return rate, burst, nil
}
