// Command guoq optimizes an OpenQASM 2.0 circuit with the GUOQ algorithm.
//
// Usage:
//
//	guoq -gateset ibm-eagle -budget 2s [-objective 2q|t|fidelity|gates]
//	     [-epsilon 1e-8] [-seed 1] [-async] [-parallel N] [-partition]
//	     [-adaptive] [-fixpoint] [-gateset-file set.json] [-coordinator addr]
//	     [-session id] [-token secret] [-progress] [-metrics]
//	     [-pprof-addr :6060] [-o out.qasm] input.qasm
//	guoq -list-gatesets
//
// The input is translated into the target gate set first, so any circuit in
// the supported vocabulary is accepted. Statistics go to stderr, the
// optimized QASM to -o or stdout.
//
// -list-gatesets prints every addressable target (built-ins plus whatever
// -gateset-file adds) with its basis and exits. -gateset-file registers a
// custom gate set from a JSON description (see guoq.ParseGateSetJSON), so
// -gateset can name targets beyond the paper's five.
//
// GUOQ is an anytime algorithm and the CLI honors that: SIGINT/SIGTERM
// stops the search gracefully and emits the best circuit found so far
// (press Ctrl-C twice to abort hard). -budget 0 runs until interrupted.
// -progress streams live search statistics to stderr.
//
// With -coordinator addr the run joins a distributed search through a
// guoqd daemon. The circuit is first submitted: if the coordinator's
// content-addressed result cache already holds an optimized circuit for
// this exact (circuit, target, ε, objective), it is emitted immediately
// without spending any search time; otherwise the run joins the exchange
// session the coordinator assigns, periodically publishing its best
// solution (with its accumulated ε bound) and adopting strictly better
// solutions found by other machines. Runs started on the same input with
// the same objective and epsilon share a session automatically; pass
// -session to pin one explicitly (which skips the submit/cache step).
// -wire selects the transport codec: gzip compression and/or the binary
// envelope framing, both negotiated per request. The signal context
// propagates into the coordinator client, so an interrupt also aborts
// in-flight exchange requests.
//
// -metrics dumps the run's metric series to stderr after the run: the
// per-transformation attribution table (attempts/accepts/rejects per rule
// and synthesizer), engine cache statistics, and the full registry in
// Prometheus text format. -pprof-addr serves net/http/pprof on a separate
// listener for CPU/heap profiling of long runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/guoq-dev/guoq"
	"github.com/guoq-dev/guoq/internal/dist"
	"github.com/guoq-dev/guoq/internal/opt"
)

func main() {
	var (
		gateSet   = flag.String("gateset", "ibm-eagle", "target gate set: ibmq20|ibm-eagle|ionq|nam|cliffordt")
		objective = flag.String("objective", "", "objective: 2q|t|fidelity|gates (default: 2q, or t for cliffordt)")
		epsilon   = flag.Float64("epsilon", 1e-8, "global approximation budget ε_f")
		budget    = flag.Duration("budget", 2*time.Second, "search time budget (0 = run until interrupted)")
		seed      = flag.Int64("seed", 1, "random seed")
		async     = flag.Bool("async", false, "apply resynthesis asynchronously")
		parallel  = flag.Int("parallel", 1, "concurrent search workers (0 = one per CPU, capped at 8)")
		part      = flag.Bool("partition", false, "with -parallel ≥ 2, optimize disjoint time windows of large circuits concurrently")
		adaptive  = flag.Bool("adaptive", false, "with -parallel ≥ 2, retarget worker temperatures from live acceptance rates and park stalled workers")
		fixpoint  = flag.Bool("fixpoint", false, "parallel local fixpoint optimization: iterated concurrent window searches for huge circuits")
		coord     = flag.String("coordinator", "", "guoqd coordinator address for distributed best-so-far exchange")
		session   = flag.String("session", "", "exchange session id (default: negotiated via submit, falling back to local derivation)")
		token     = flag.String("token", os.Getenv("GUOQD_TOKEN"), "bearer token for a -coordinator started with -token (default $GUOQD_TOKEN)")
		wire      = flag.String("wire", "json", "coordinator wire format: json|gzip|bin|bin+gzip")
		progress  = flag.Bool("progress", false, "stream live search progress to stderr")
		metrics   = flag.Bool("metrics", false, "dump per-rule attribution and the full metric registry (Prometheus text) to stderr after the run")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
		outPath   = flag.String("o", "", "output QASM path (default stdout)")
		gsFile    = flag.String("gateset-file", "", "register a custom gate set from a JSON description before resolving -gateset")
		listSets  = flag.Bool("list-gatesets", false, "list every addressable gate set and exit")
	)
	flag.Parse()
	if *gsFile != "" {
		if err := registerGateSetFile(*gsFile); err != nil {
			fatal(err)
		}
	}
	if *listSets {
		listGateSets()
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: guoq [flags] input.qasm")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	parsed, err := guoq.ParseQASM(string(src))
	if err != nil {
		fatal(err)
	}
	native, err := guoq.Translate(parsed, *gateSet)
	if err != nil {
		fatal(err)
	}
	workers := *parallel
	if workers <= 0 {
		workers = opt.AutoWorkers()
	}
	if *pprofAddr != "" {
		// pprof rides the default mux on its own listener, kept apart from
		// any user-facing port so profiling is never accidentally exposed.
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "guoq: pprof:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	// First SIGINT/SIGTERM cancels the run context — the session winds down
	// and returns its best-so-far. stopSig() then restores default signal
	// handling, so a second Ctrl-C kills the process the classic way.
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()
	go func() {
		<-ctx.Done()
		stopSig()
	}()

	obj := guoq.Objective(*objective)
	if obj == "" {
		obj = guoq.DefaultObjective(*gateSet)
	}
	var client *dist.Client
	if *coord != "" {
		worker := fmt.Sprintf("pid-%d", os.Getpid())
		if host, herr := os.Hostname(); herr == nil {
			worker = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		client, err = dist.Dial(*coord, *session, worker)
		if err != nil {
			fatal(err)
		}
		client.Epsilon = *epsilon
		client.Context = ctx
		client.Token = *token
		switch *wire {
		case "json":
		case "gzip":
			client.Gzip = true
		case "bin":
			client.Binary = true
		case "bin+gzip", "gzip+bin":
			client.Gzip, client.Binary = true, true
		default:
			fatal(fmt.Errorf("unknown -wire format %q (want json|gzip|bin|bin+gzip)", *wire))
		}
		if *session == "" {
			// Submit first: the coordinator canonicalizes the circuit and
			// either answers from its result cache — done, no search — or
			// assigns the session bound to that cache slot.
			resp, serr := client.Submit(native, *gateSet, string(obj), *epsilon)
			switch {
			case serr == nil && resp.Cached:
				cached, cachedErr, oerr := resp.Best.Open()
				if oerr != nil {
					fatal(oerr)
				}
				fmt.Fprintf(os.Stderr, "coordinator %s: cache hit — optimized circuit served without search (cost %.3f, ε=%.3g)\n",
					*coord, resp.Best.Cost, cachedErr)
				emitQASM(cached.WriteQASM(), *outPath)
				return
			case serr == nil:
				client.Session = resp.Session
			default:
				// Older coordinator without /v1/submit (or a transient
				// failure past retries): fall back to the local derivation
				// every worker computes identically.
				client.Session = dist.SessionID(native, string(obj), *epsilon)
				fmt.Fprintf(os.Stderr, "coordinator submit unavailable (%v); using derived session\n", serr)
			}
		}
		fmt.Fprintf(os.Stderr, "coordinator %s, session %s\n", *coord, client.Session)
	}

	o := guoq.Options{
		GateSet:           *gateSet,
		Objective:         obj,
		Epsilon:           *epsilon,
		Budget:            *budget,
		Seed:              *seed,
		Async:             *async,
		Parallelism:       workers,
		PartitionParallel: *part,
		AdaptivePortfolio: *adaptive,
		Fixpoint:          *fixpoint,
	}
	var reg *guoq.MetricsRegistry
	if *metrics {
		reg = guoq.NewMetricsRegistry()
		o.Metrics = reg
		if client != nil {
			client.Instrument(reg)
		}
	}
	if client != nil {
		o.Exchanger = client
	}
	sess, err := guoq.Start(ctx, native, o)
	if err != nil {
		fatal(err)
	}
	if *progress {
		go func() {
			last := time.Time{}
			for ev := range sess.Events() {
				// Improvements always print; heartbeats at most 2 Hz.
				if !ev.Improved && time.Since(last) < 500*time.Millisecond {
					continue
				}
				last = time.Now()
				fmt.Fprintf(os.Stderr, "progress   %8d iters  %6.2f%% accepted  best cost %.3f  ε=%.3g  resynth=%d\n",
					ev.Iters, 100*ev.AcceptanceRate, ev.BestCost, ev.Error, ev.ResynthInFlight)
			}
		}()
	}
	out, res, err := sess.Wait()
	if err != nil {
		fatal(err)
	}
	// The signal context errors only on SIGINT/SIGTERM — Start applies the
	// -budget deadline on a derived context, invisible here.
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "interrupted — emitting best-so-far")
	}
	fmt.Fprintf(os.Stderr, "gateset    %s (objective %s, ε=%g, %v)\n",
		res.GateSet, res.Objective, *epsilon, res.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(os.Stderr, "gates      %6d -> %6d\n", res.Before, res.After)
	fmt.Fprintf(os.Stderr, "2q gates   %6d -> %6d\n", res.TwoQubitBefore, res.TwoQubitAfter)
	fmt.Fprintf(os.Stderr, "T gates    %6d -> %6d\n", res.TCountBefore, res.TCountAfter)
	fmt.Fprintf(os.Stderr, "depth      %6d -> %6d\n", res.DepthBefore, res.DepthAfter)
	fmt.Fprintf(os.Stderr, "fidelity   %.4f -> %.4f\n", res.FidelityBefore, res.FidelityAfter)
	fmt.Fprintf(os.Stderr, "search     %d iters, %d accepted\n", res.Iters, res.Accepted)
	if client != nil {
		st := client.Stats()
		fmt.Fprintf(os.Stderr, "exchange   %d round trips (%d throttled), %d adoptions, %d migrations into the search, %d errors\n",
			st.Exchanges, st.Throttled, st.Adoptions, res.Migrations, st.Errors)
	}
	if *metrics {
		snap := sess.Metrics()
		fmt.Fprintf(os.Stderr, "engine     %.0f cache hits, %.0f positive replays, %.0f misses, %.0f splices, %.0f invalidated (halo depth %.0f)\n",
			snap["guoq_engine_cache_hits_total"], snap["guoq_engine_positive_hits_total"],
			snap["guoq_engine_cache_misses_total"], snap["guoq_engine_splices_total"],
			snap["guoq_engine_invalidated_total"], snap["guoq_engine_halo_depth"])
		if len(res.Rules) > 0 {
			fmt.Fprintf(os.Stderr, "%-40s %9s %9s %9s\n", "transformation", "attempts", "accepted", "rejected")
			for _, r := range res.Rules {
				fmt.Fprintf(os.Stderr, "%-40s %9d %9d %9d\n", r.Name, r.Attempts, r.Accepted, r.Rejected)
			}
		}
		fmt.Fprintln(os.Stderr, "--- metrics (Prometheus text) ---")
		_ = reg.WritePrometheus(os.Stderr)
	}

	emitQASM(out.WriteQASM(), *outPath)
}

// emitQASM writes the result to -o, or stdout when unset.
func emitQASM(qasm, outPath string) {
	if outPath == "" {
		fmt.Print(qasm)
		return
	}
	if err := os.WriteFile(outPath, []byte(qasm), 0o644); err != nil {
		fatal(err)
	}
}

// registerGateSetFile loads and registers a custom gate set description so
// -gateset (and session derivation) can name it.
func registerGateSetFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	gs, err := guoq.ParseGateSetJSON(data)
	if err != nil {
		return err
	}
	return guoq.RegisterGateSet(gs)
}

// listGateSets prints every addressable target with its basis.
func listGateSets() {
	for _, name := range guoq.GateSets() {
		gs, err := guoq.LookupGateSet(name)
		if err != nil {
			continue
		}
		arch := gs.Architecture
		if arch == "" {
			arch = "none"
		}
		fmt.Printf("%-16s %-16s %s\n", gs.Name, arch, strings.Join(gs.Basis, " "))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "guoq:", err)
	os.Exit(1)
}
