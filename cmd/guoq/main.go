// Command guoq optimizes an OpenQASM 2.0 circuit with the GUOQ algorithm.
//
// Usage:
//
//	guoq -gateset ibm-eagle -budget 2s [-objective 2q|t|fidelity|gates]
//	     [-epsilon 1e-8] [-seed 1] [-async] [-parallel N] [-partition]
//	     [-o out.qasm] input.qasm
//
// The input is translated into the target gate set first, so any circuit in
// the supported vocabulary is accepted. Statistics go to stderr, the
// optimized QASM to -o or stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/guoq-dev/guoq"
	"github.com/guoq-dev/guoq/internal/opt"
)

func main() {
	var (
		gateSet   = flag.String("gateset", "ibm-eagle", "target gate set: ibmq20|ibm-eagle|ionq|nam|cliffordt")
		objective = flag.String("objective", "", "objective: 2q|t|fidelity|gates (default: 2q, or t for cliffordt)")
		epsilon   = flag.Float64("epsilon", 1e-8, "global approximation budget ε_f")
		budget    = flag.Duration("budget", 2*time.Second, "search time budget")
		seed      = flag.Int64("seed", 1, "random seed")
		async     = flag.Bool("async", false, "apply resynthesis asynchronously")
		parallel  = flag.Int("parallel", 1, "concurrent search workers (0 = one per CPU, capped at 8)")
		part      = flag.Bool("partition", false, "with -parallel ≥ 2, optimize disjoint time windows of large circuits concurrently")
		outPath   = flag.String("o", "", "output QASM path (default stdout)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: guoq [flags] input.qasm")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	parsed, err := guoq.ParseQASM(string(src))
	if err != nil {
		fatal(err)
	}
	native, err := guoq.Translate(parsed, *gateSet)
	if err != nil {
		fatal(err)
	}
	workers := *parallel
	if workers <= 0 {
		workers = opt.AutoWorkers()
	}
	out, res, err := guoq.Optimize(native, guoq.Options{
		GateSet:           *gateSet,
		Objective:         guoq.Objective(*objective),
		Epsilon:           *epsilon,
		Budget:            *budget,
		Seed:              *seed,
		Async:             *async,
		Parallelism:       workers,
		PartitionParallel: *part,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "gateset    %s (objective %s, ε=%g, %v)\n",
		res.GateSet, res.Objective, *epsilon, res.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(os.Stderr, "gates      %6d -> %6d\n", res.Before, res.After)
	fmt.Fprintf(os.Stderr, "2q gates   %6d -> %6d\n", res.TwoQubitBefore, res.TwoQubitAfter)
	fmt.Fprintf(os.Stderr, "T gates    %6d -> %6d\n", res.TCountBefore, res.TCountAfter)
	fmt.Fprintf(os.Stderr, "depth      %6d -> %6d\n", res.DepthBefore, res.DepthAfter)
	fmt.Fprintf(os.Stderr, "fidelity   %.4f -> %.4f\n", res.FidelityBefore, res.FidelityAfter)

	qasm := out.WriteQASM()
	if *outPath == "" {
		fmt.Print(qasm)
		return
	}
	if err := os.WriteFile(*outPath, []byte(qasm), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "guoq:", err)
	os.Exit(1)
}
