// Command guoqbench regenerates the paper's tables and figures, and runs
// sharded benchmark sweeps for the distributed service.
//
// Usage:
//
//	guoqbench -exp fig1 [-budget 500ms] [-trials 3] [-limit 40] [-seed 1]
//	          [-shard i/n] [-remote addr] [-json out.json]
//
// Experiments: table2, table3, fig1, fig7, fig8, fig9, fig10, fig11,
// fig12, fig13, fig14, fig15, parallel, bench, all. -limit 0 runs the full
// 247-circuit suite (slow); smaller limits subsample evenly. Output mirrors
// the rows and series the paper reports ("parallel" compares the portfolio
// and partition-parallel engines against the single-threaded loop); see
// EXPERIMENTS.md for the recorded runs.
//
// Distributed sweeps: -shard i/n statically runs every n-th circuit
// starting at i (any experiment), so n machines cover one suite exactly
// once with no coordination. The "bench" experiment sweeps the suite
// through GUOQ once per circuit and records per-circuit results; -json
// writes them as a JSON array streamed one element per finished circuit
// (to a file, or stdout with "-"), and -remote addr switches it to
// dynamic sharding — circuits are leased from a guoqd coordinator's work
// queue (dead workers' leases expire and their circuits are re-issued)
// and every result is reported back, so the coordinator accumulates the
// merged suite (curl /v1/queues/bench).
//
// The bench sweep is interruptible: SIGINT/SIGTERM stops between circuits
// (the in-flight circuit finishes with its best-so-far), the JSON array is
// closed validly, and the partial results are reported.
//
// -metrics embeds a per-circuit observability snapshot in each bench
// record: heap allocations per search iteration and the full metric
// registry of that circuit's run (engine cache hit/miss counters, per-rule
// accept series), each circuit against a fresh registry — with -json this
// yields machine-readable cache-hit trajectories across the suite.
//
// Custom targets: -gateset-file registers a gate set from a JSON
// description (guoq.ParseGateSetJSON), after which -gateset can name it —
// the suite is translated into the custom basis like any built-in target.
// -token authenticates against a coordinator started with guoqd -token.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/guoq-dev/guoq"
	"github.com/guoq-dev/guoq/internal/dist"
	"github.com/guoq-dev/guoq/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "fig1", "experiment id (table2, table3, fig1, fig7..fig15, parallel, fixpoint, bench, all)")
		budget  = flag.Duration("budget", 300*time.Millisecond, "per-tool per-circuit budget")
		trials  = flag.Int("trials", 3, "GUOQ trials per benchmark")
		limit   = flag.Int("limit", 40, "suite subsample size (0 = full 247)")
		seed    = flag.Int64("seed", 1, "base random seed")
		shard   = flag.String("shard", "", "static shard i/n: run every n-th circuit starting at i (e.g. 0/4)")
		remote  = flag.String("remote", "", "guoqd coordinator address for dynamic sharding (bench only)")
		jsonOut = flag.String("json", "", "write results as JSON (bench and fixpoint; \"-\" = stdout)")
		gateSet = flag.String("gateset", "ibmq20", "target gate set for bench (built-in or loaded via -gateset-file)")
		gsFile  = flag.String("gateset-file", "", "register a custom gate set from a JSON description (guoq.ParseGateSetJSON) before resolving -gateset")
		workers = flag.Int("workers", 1, "per-circuit portfolio size for bench")
		metrics = flag.Bool("metrics", false, "embed a per-circuit metrics snapshot (allocs/iter, cache hits, per-rule accepts) in bench results")
		queue   = flag.String("queue", "bench", "work queue name on the coordinator")
		fpGates = flag.Int("fixpoint-gates", 10000, "generated circuit size for the fixpoint experiment")
		ttl     = flag.Duration("lease-ttl", 60*time.Second, "job lease duration in remote mode")
		token   = flag.String("token", os.Getenv("GUOQD_TOKEN"), "bearer token for a -remote coordinator started with -token (default $GUOQD_TOKEN)")
	)
	flag.Parse()
	if *gsFile != "" {
		data, err := os.ReadFile(*gsFile)
		if err != nil {
			fatal(err)
		}
		gs, err := guoq.ParseGateSetJSON(data)
		if err != nil {
			fatal(err)
		}
		if err := guoq.RegisterGateSet(gs); err != nil {
			fatal(err)
		}
	}

	// With -json - the machine-readable array owns stdout; every human
	// line (headers, per-circuit progress, summaries) moves to stderr.
	hout := os.Stdout
	if *jsonOut == "-" {
		hout = os.Stderr
	}

	cfg := experiments.Config{
		Budget:     *budget,
		Trials:     *trials,
		SuiteLimit: *limit,
		Epsilon:    1e-8,
		Seed:       *seed,
		Out:        hout,
	}
	if *shard != "" {
		if _, err := fmt.Sscanf(*shard, "%d/%d", &cfg.Shard, &cfg.Shards); err != nil ||
			cfg.Shards < 1 || cfg.Shard < 0 || cfg.Shard >= cfg.Shards {
			fatal(fmt.Errorf("bad -shard %q (want i/n with 0 ≤ i < n)", *shard))
		}
	}

	// SIGINT/SIGTERM cancels the sweep between circuits; a second signal
	// kills immediately (default handling is restored after the first).
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()
	go func() {
		<-ctx.Done()
		stopSig()
	}()

	runBench := func() error {
		bo := experiments.BenchOptions{GateSet: *gateSet, Workers: *workers, Context: ctx, Metrics: *metrics}
		if host, err := os.Hostname(); err == nil {
			bo.Worker = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		if *remote != "" {
			client, err := dist.Dial(*remote, "", bo.Worker)
			if err != nil {
				return err
			}
			client.Context = ctx
			client.Token = *token
			bo.Source = &dist.JobSource{Client: client, QueueName: *queue, TTL: *ttl}
		}
		if *jsonOut != "" {
			w := os.Stdout
			if *jsonOut != "-" {
				f, err := os.Create(*jsonOut)
				if err != nil {
					return err
				}
				defer f.Close()
				w = f
			}
			bo.JSON = w
		}
		results, err := experiments.Bench(cfg, bo)
		if err != nil {
			return err
		}
		if ctx.Err() != nil {
			fmt.Fprintf(cfg.Out, "bench: interrupted after %d circuits (partial results reported)\n", len(results))
			return nil
		}
		fmt.Fprintf(cfg.Out, "bench: %d circuits optimized\n", len(results))
		return nil
	}

	runFixpoint := func() error {
		var w *os.File
		if *jsonOut != "" {
			w = os.Stdout
			if *jsonOut != "-" {
				f, err := os.Create(*jsonOut)
				if err != nil {
					return err
				}
				defer f.Close()
				w = f
			}
		}
		var jw io.Writer
		if w != nil {
			jw = w
		}
		_, err := experiments.Fixpoint(cfg, *workers, 20, *fpGates, jw)
		return err
	}

	run := func(id string) error {
		fmt.Fprintf(hout, "### %s (budget=%v trials=%d limit=%d)\n\n", id, *budget, *trials, *limit)
		start := time.Now()
		var err error
		var sums []experiments.Summary
		switch id {
		case "table2":
			err = experiments.Table2(cfg)
		case "table3":
			err = experiments.Table3(cfg)
		case "fig1":
			sums, err = experiments.Fig1(cfg)
		case "fig7":
			_, err = experiments.Fig7(cfg)
		case "fig8":
			sums, err = experiments.Fig8(cfg)
		case "fig9":
			sums, err = experiments.Fig9(cfg)
		case "fig10":
			sums, err = experiments.Fig10(cfg)
		case "fig11":
			sums, err = experiments.Fig11(cfg)
		case "fig12":
			sums, err = experiments.Fig12(cfg)
		case "fig13":
			sums, err = experiments.Fig13(cfg)
		case "fig14":
			sums, err = experiments.Fig14(cfg)
		case "fig15":
			_, err = experiments.Fig15(cfg)
		case "parallel":
			sums, err = experiments.Parallel(cfg)
		case "fixpoint":
			err = runFixpoint()
		case "bench":
			err = runBench()
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		if err != nil {
			return err
		}
		for _, s := range sums {
			fmt.Fprintf(hout, "summary: vs %-26s %-13s better/match/worse = %d/%d/%d  mean guoq=%.3f tool=%.3f\n",
				s.Tool, s.Metric, s.Better, s.Match, s.Worse, s.GUOQMean, s.ToolMean)
		}
		fmt.Fprintf(hout, "\n(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		return nil
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"table2", "table3", "fig15", "fig1", "fig7", "fig8",
			"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "parallel"}
	}
	for _, id := range ids {
		if err := run(id); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "guoqbench:", err)
	os.Exit(1)
}
