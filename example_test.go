package guoq_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/guoq-dev/guoq"
)

// ExampleStart shows the anytime Session workflow: start a search under a
// cancellable context, watch the progress stream, and collect the best
// solution found — the same code path whether the run ends by deadline,
// cancellation, or Stop.
func ExampleStart() {
	c := guoq.NewCircuit(3)
	c.Append(guoq.H(0), guoq.CX(0, 1), guoq.CX(0, 1), guoq.CX(1, 2))
	native, err := guoq.Translate(c, "ibm-eagle")
	if err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel() // cancelling early would return the best-so-far

	sess, err := guoq.Start(ctx, native, guoq.Options{
		GateSet: "ibm-eagle",
		Budget:  200 * time.Millisecond, // sugar for a ctx deadline
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Live observation: Events streams progress, Best snapshots at any
	// moment without stopping the search.
	go func() {
		for ev := range sess.Events() {
			if ev.Improved {
				fmt.Printf("improved: cost %.3f after %d iters\n", ev.BestCost, ev.Iters)
			}
		}
	}()
	if snapshot, res := sess.Best(); snapshot != nil {
		_ = res.TwoQubitAfter // valid mid-run statistics
	}

	out, res, err := sess.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.TwoQubitBefore, "->", out.TwoQubitCount())
}

// ExampleCostFunc supplies a custom objective: the search minimizes the
// caller's function instead of the built-in Objective enum, with the same
// never-worse and ε-equivalence guarantees stated against it.
func ExampleCostFunc() {
	c := guoq.NewCircuit(3)
	c.Append(guoq.H(0), guoq.H(0), guoq.CX(0, 1), guoq.T(2), guoq.Tdg(2))
	native, err := guoq.Translate(c, "nam")
	if err != nil {
		log.Fatal(err)
	}

	// Minimize depth, breaking ties on total gate count.
	depthCost := guoq.CostFunc(func(c *guoq.Circuit) float64 {
		return float64(c.Depth()) + 1e-3*float64(c.Len())
	})
	out, res, err := guoq.Optimize(native, guoq.Options{
		GateSet: "nam",
		Cost:    depthCost,
		Budget:  200 * time.Millisecond,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Objective, "depth:", res.DepthBefore, "->", out.Depth())
}
